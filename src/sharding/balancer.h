// ShardBalancer: hotspot-driven shard placement, run inside one
// middleware (DM).
//
// Every `interval` it scores each shard range by the access heat the DM's
// HotspotFootprint observed since the last tick and plans range
// operations:
//
//  * Split. A range whose heat concentrates in a small contiguous
//    sub-span (intra-chunk skew, detected from the footprint's heat
//    histogram) is split at the hot sub-range's boundaries, so the next
//    tick can migrate just the heat instead of the whole chunk.
//  * Merge. Adjacent same-owner ranges that stayed cold for several
//    consecutive ticks merge back, bounding map growth.
//  * Migrate. A hot range parked far from the DM region driving it is
//    migrated toward a better source. Placement is two-objective: the
//    RTT gain (owner RTT - destination RTT, from the LatencyMonitor)
//    minus a load penalty — the destination's reported in-flight load
//    (capacity signal piggybacked on ping pongs) plus a bias per range
//    recently placed on it — so hot chunks spread across sources instead
//    of piling onto the single nearest node.
//
// Migrations run the ShardMigrator's snapshot + delta + fenced cutover
// protocol; on ShardCutoverReady the balancer adopts the new placement
// and publishes the map to every DM and data-source replica. Stalled
// migrations are cancelled after `migration_timeout`; placement only ever
// changes at cutover (or at a split/merge, which changes boundaries but
// not ownership), so a cancelled migration can never lose data.
#ifndef GEOTP_SHARDING_BALANCER_H_
#define GEOTP_SHARDING_BALANCER_H_

#include <map>
#include <vector>

#include "common/types.h"
#include "protocol/messages.h"
#include "sharding/shard_map.h"
#include "sim/network.h"

namespace geotp {
namespace middleware {
class MiddlewareNode;
}  // namespace middleware

namespace sharding {

struct BalancerConfig {
  /// Master switch: exactly one DM of a deployment should enable it.
  bool enabled = false;
  /// Evaluation cadence (also drives migration-timeout checks).
  Micros interval = MsToMicros(400);
  /// A migration not cut over within this window is cancelled.
  Micros migration_timeout = SecToMicros(8);
  /// Minimum footprint accesses per interval for a range to count as hot.
  uint64_t min_heat = 50;
  /// Minimum two-objective score (RTT gain - load penalty) to justify a
  /// move.
  Micros min_rtt_gain = MsToMicros(20);
  /// Concurrent migrations cap.
  int max_concurrent = 1;
  /// Per-range cooldown after a completed move (anti ping-pong).
  Micros range_cooldown = SecToMicros(4);
  /// Other DMs to publish map updates to (data sources are discovered
  /// from the catalog; the owning DM adopts locally).
  std::vector<NodeId> peer_middlewares;

  // ----- capacity-aware placement (two-objective scorer) ------------------
  /// Score penalty (us) per unit of the destination's reported in-flight
  /// load IN EXCESS of the current owner's (live branches, EWMA of the
  /// capacity signal on ping pongs; relative, so moving heat off a busy
  /// owner onto an idle node is free). 0 restores the single-objective
  /// nearest-by-RTT placement.
  Micros capacity_weight = 1000;
  /// Score penalty (us) per range recently placed on (migrating to, or
  /// moved within the cooldown window to) the destination. Spreads a
  /// burst of hot ranges before the measured load has time to react.
  /// Deliberately much smaller than typical inter-source RTT deltas: it
  /// deflects only once several ranges pile into one cooldown window,
  /// without trading real RTT gains for cosmetic balance.
  Micros placement_bias = MsToMicros(5);

  // ----- online split / merge ---------------------------------------------
  bool split_enabled = true;
  /// Histogram buckets for intra-range skew detection.
  int split_buckets = 16;
  /// A contiguous sub-span holding at least this fraction of the range's
  /// heat counts as the hot sub-range. High on purpose: a mildly skewed
  /// range migrates whole in one snapshot+fence cycle; splitting it
  /// piecemeal would pay a fence window per piece and leave the warm
  /// remainder behind. Only a sharply concentrated head is worth carving
  /// out.
  double split_skew_fraction = 0.8;
  /// Split only when the hot sub-range spans at most this fraction of the
  /// range's width (otherwise the whole range is hot and migrating it
  /// outright is right).
  double split_max_fraction = 0.5;
  /// Minimum width of a split-off sub-range (the hot window is widened to
  /// this); ranges narrower than twice this never split.
  uint64_t split_min_keys = 64;
  bool merge_enabled = true;
  /// Adjacent same-owner ranges with zero heat for this many consecutive
  /// ticks merge back (one merge per tick). Patient by default: a
  /// twitchy merge would undo a split between two bursts of a slow hot
  /// workload and the boundaries would flap.
  int merge_cold_ticks = 20;
};

struct BalancerStats {
  uint64_t ticks = 0;
  uint64_t migrations_started = 0;
  uint64_t migrations_completed = 0;
  uint64_t migrations_cancelled = 0;
  uint64_t map_publishes = 0;
  uint64_t splits = 0;             ///< split operations performed
  uint64_t merges = 0;             ///< merge operations performed
  /// Hot candidates whose raw RTT gain cleared min_rtt_gain but whose
  /// two-objective score did not for any destination (placement bounded
  /// by load).
  uint64_t capacity_deferrals = 0;
  /// Cutovers published although the source/dest leader epoch moved since
  /// planning — safe because the migration state is log-replicated (the
  /// promoted leader re-fenced from the journaled cutover record).
  uint64_t logged_epoch_overrides = 0;
  /// Migrations a promoted source leader aborted from its log
  /// (ShardMigrateAborted), cancelled here without waiting for the
  /// timeout.
  uint64_t aborted_by_source = 0;
  /// In-flight migrations re-pointed at a new destination leader after a
  /// failover there — the source re-offers sent-chunk hashes and resumes
  /// past the declined prefix instead of waiting for the timeout cancel.
  uint64_t migrations_repointed = 0;
};

class ShardBalancer {
 public:
  ShardBalancer(middleware::MiddlewareNode* dm, BalancerConfig config);

  /// Arms the periodic evaluation timer.
  void Start();

  /// Consumes ShardCutoverReady / ShardMigrateAborted. Returns false for
  /// unrelated messages.
  bool HandleMessage(sim::MessageBase* msg);

  /// Chaos/test hook: splits the range covering (`table`, `at`) at `at`,
  /// publishes the new boundaries. Refused (false) when the split point is
  /// invalid or the range is mid-migration.
  bool ForceSplit(uint32_t table, uint64_t at);

  /// Chaos/test hook: merges the range covering (`table`, `key`) with its
  /// successor (must be span-adjacent, same owner, neither migrating),
  /// publishes. Returns false when not mergeable.
  bool ForceMerge(uint32_t table, uint64_t key);

  const BalancerStats& stats() const { return stats_; }
  size_t InFlight() const { return in_flight_.size(); }

 private:
  struct Migration {
    uint64_t id = 0;
    ShardRange range;  ///< span + owner at planning time
    NodeId source = kInvalidNode;  ///< logical owner at start
    NodeId dest = kInvalidNode;
    uint64_t new_version = 0;
    Micros deadline = 0;
    /// Leadership epochs of both groups when the migration was planned: a
    /// failover at either end invalidates the fence / install state, so a
    /// cutover report from a superseded term must not be published.
    uint64_t source_leader_epoch = 0;
    uint64_t dest_leader_epoch = 0;
  };

  /// Identifies a range by span; split/merge retire old spans and their
  /// bookkeeping with them.
  struct SpanKey {
    uint32_t table = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator<(const SpanKey& other) const {
      if (table != other.table) return table < other.table;
      if (lo != other.lo) return lo < other.lo;
      return hi < other.hi;
    }
  };
  static SpanKey KeyOf(const ShardRange& range) {
    return SpanKey{range.table, range.lo, range.hi};
  }

  struct RangeState {
    /// Cumulative footprint t_cnt at the last tick (heat = delta).
    uint64_t last_heat = 0;
    bool heat_seeded = false;
    Micros cooldown_until = 0;
    int cold_ticks = 0;  ///< consecutive zero-heat ticks (merge signal)
  };

  void ArmTick(uint64_t generation);
  void Tick();
  void CancelExpired();
  /// Detects a destination-leader epoch change on an in-flight migration
  /// and re-sends the ShardMigrateRequest with the new leader; the source
  /// treats the duplicate as a re-point and re-seeds by hash decline.
  void RepointFailedDestinations();
  /// One round of range maintenance: at most one split OR one merge
  /// (publishing the new boundaries), else migration planning. A split's
  /// hot child is put up for migration in the same tick — it inherits the
  /// parent's heat evidence; waiting for the child to re-qualify would
  /// let a slow hot workload's boundaries flap instead of moving.
  void PlanRangeOps();
  void PlanMigrations(const std::vector<uint64_t>& heat);
  /// Plans one migration for `range` if a destination clears the
  /// two-objective score. Returns true when a request went out.
  bool StartMigration(const ShardRange& range, uint64_t heat,
                      std::map<NodeId, int>& placed);
  /// Splits `range` when its heat concentrates in a small sub-span.
  /// Returns true if a split was performed (map changed + published);
  /// `hot_child` receives the split-off hot sub-range.
  bool TrySplit(const ShardRange& range, ShardRange* hot_child);
  /// Merges one cold adjacent same-owner pair. True if merged.
  bool TryMergeCold();
  /// Two-objective destination choice for `range`: max over destinations
  /// of RTT gain minus load penalty. Returns kInvalidNode when no
  /// destination clears min_rtt_gain; sets `deferred` when the RTT gain
  /// alone would have cleared it (capacity bounded the placement).
  NodeId PickDestination(const ShardRange& range, Micros owner_rtt,
                         std::map<NodeId, int>& placed, bool* deferred) const;
  /// Per-destination placement pressure (in-flight migrations), the
  /// `placed` input both migration-planning paths share.
  std::map<NodeId, int> PlacedPressure() const;
  /// Shared post-boundary-change bookkeeping for splits of `original`
  /// (stats, heat re-seeding of the new spans, epoch note, publish).
  void FinishSplit(const ShardRange& original);
  /// Shared post-merge bookkeeping: retires the merged spans' state and
  /// seeds the combined range at `idx`.
  void FinishMerge(size_t idx, const SpanKey& left, const SpanKey& right);
  void OnCutoverReady(const protocol::ShardCutoverReady& ready);
  /// A promoted source leader aborted the migration from its log: cancel
  /// it here immediately (the timeout would get there eventually).
  void OnMigrateAborted(uint64_t migration_id);
  /// Next strictly-increasing map version (single-writer invariant).
  uint64_t MintVersion();
  /// True if `range` overlaps an in-flight migration's span.
  bool Migrating(const ShardRange& range) const;
  /// Seeds heat bookkeeping for a new span at the current cumulative
  /// footprint count (so boundary changes don't read as heat spikes).
  void SeedSpan(const ShardRange& range);
  uint64_t FootprintCount(const ShardRange& range) const;
  /// Broadcasts the authoritative map to peers and every data-source
  /// replica (the local catalog is already updated).
  void Publish();

  middleware::MiddlewareNode* dm_;
  BalancerConfig config_;
  std::map<SpanKey, RangeState> range_state_;
  std::vector<Migration> in_flight_;
  uint64_t next_migration_id_ = 1;
  uint64_t next_version_ = 0;
  uint64_t generation_ = 0;  ///< invalidates pre-crash tick chains
  BalancerStats stats_;
};

}  // namespace sharding
}  // namespace geotp

#endif  // GEOTP_SHARDING_BALANCER_H_
