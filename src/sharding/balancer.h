// ShardBalancer: hotspot-driven shard placement, run inside one
// middleware (DM).
//
// Every `interval` it scores each shard range by the access heat the DM's
// HotspotFootprint observed since the last tick, and compares the range
// owner's measured RTT (LatencyMonitor) against the nearest data source.
// A hot range parked on a far source is migrated toward the DM region
// driving it: the balancer sends a ShardMigrateRequest to the source
// leader, the ShardMigrator pair runs the snapshot + delta + fenced
// cutover protocol, and on ShardCutoverReady the balancer bumps the shard
// map epoch and publishes the new placement to every DM and data-source
// replica. Stalled migrations (crashed source leader, unreachable
// destination) are cancelled after `migration_timeout`; placement is
// unchanged until a cutover actually completes, so a cancelled migration
// can never lose data.
#ifndef GEOTP_SHARDING_BALANCER_H_
#define GEOTP_SHARDING_BALANCER_H_

#include <vector>

#include "common/types.h"
#include "sharding/shard_map.h"
#include "sim/network.h"

namespace geotp {
namespace middleware {
class MiddlewareNode;
}  // namespace middleware

namespace sharding {

struct BalancerConfig {
  /// Master switch: exactly one DM of a deployment should enable it.
  bool enabled = false;
  /// Evaluation cadence (also drives migration-timeout checks).
  Micros interval = MsToMicros(400);
  /// A migration not cut over within this window is cancelled.
  Micros migration_timeout = SecToMicros(8);
  /// Minimum footprint accesses per interval for a range to count as hot.
  uint64_t min_heat = 50;
  /// Minimum RTT saved (owner RTT - best RTT) to justify a move.
  Micros min_rtt_gain = MsToMicros(20);
  /// Concurrent migrations cap.
  int max_concurrent = 1;
  /// Per-range cooldown after a completed move (anti ping-pong).
  Micros range_cooldown = SecToMicros(4);
  /// Other DMs to publish map updates to (data sources are discovered
  /// from the catalog; the owning DM adopts locally).
  std::vector<NodeId> peer_middlewares;
};

struct BalancerStats {
  uint64_t ticks = 0;
  uint64_t migrations_started = 0;
  uint64_t migrations_completed = 0;
  uint64_t migrations_cancelled = 0;
  uint64_t map_publishes = 0;
};

class ShardBalancer {
 public:
  ShardBalancer(middleware::MiddlewareNode* dm, BalancerConfig config);

  /// Arms the periodic evaluation timer.
  void Start();

  /// Consumes ShardCutoverReady. Returns false for unrelated messages.
  bool HandleMessage(sim::MessageBase* msg);

  const BalancerStats& stats() const { return stats_; }
  size_t InFlight() const { return in_flight_.size(); }

 private:
  struct Migration {
    uint64_t id = 0;
    size_t range_idx = 0;
    NodeId source = kInvalidNode;  ///< logical owner at start
    NodeId dest = kInvalidNode;
    uint64_t new_version = 0;
    Micros deadline = 0;
    /// Leadership epochs of both groups when the migration was planned: a
    /// failover at either end invalidates the fence / install state, so a
    /// cutover report from a superseded term must not be published.
    uint64_t source_leader_epoch = 0;
    uint64_t dest_leader_epoch = 0;
  };

  void ArmTick(uint64_t generation);
  void Tick();
  void CancelExpired();
  void PlanMigrations();
  void OnCutoverReady(uint64_t migration_id, const ShardRange& range);
  /// Broadcasts the authoritative map to peers and every data-source
  /// replica (the local catalog is already updated).
  void Publish();

  middleware::MiddlewareNode* dm_;
  BalancerConfig config_;
  /// Cumulative footprint t_cnt per range at the last tick (parallel to
  /// the map's range vector; spans never change, only owners do).
  std::vector<uint64_t> last_heat_;
  std::vector<Micros> cooldown_until_;
  std::vector<Migration> in_flight_;
  uint64_t next_migration_id_ = 1;
  uint64_t next_version_ = 0;
  uint64_t generation_ = 0;  ///< invalidates pre-crash tick chains
  BalancerStats stats_;
};

}  // namespace sharding
}  // namespace geotp

#endif  // GEOTP_SHARDING_BALANCER_H_
