#include "sharding/migrator.h"

#include <algorithm>
#include <utility>

#include "common/compress.h"
#include "common/logging.h"
#include "datasource/data_source.h"
#include "protocol/wan_codec.h"

namespace geotp {
namespace sharding {

using protocol::MigrationRecord;
using protocol::ReplEntryType;
using protocol::ReplWrite;
using protocol::ShardCutoverReady;
using protocol::ShardDeltaAck;
using protocol::ShardDeltaBatch;
using protocol::ShardMapUpdate;
using protocol::ShardMigrateAborted;
using protocol::ShardMigrateCancel;
using protocol::ShardMigrateRequest;
using protocol::ShardSeedDecline;
using protocol::ShardSeedOffer;
using protocol::ShardSnapshotAck;
using protocol::ShardSnapshotChunk;

namespace {

/// Codecs this node accepts on inbound chunk payloads, advertised on
/// every ack/decline so the sender can compress.
uint32_t LocalCodecMask(const datasource::DataSourceNode* node) {
  return node->config().wan_compression ? common::SupportedCodecMask()
                                        : common::kCodecRawBit;
}

}  // namespace

bool ShardMigrator::HandleMessage(sim::MessageBase* msg) {
  switch (msg->type()) {
    case sim::MessageType::kShardMigrateRequest:
      OnMigrateRequest(static_cast<ShardMigrateRequest&>(*msg));
      return true;
    case sim::MessageType::kShardMigrateCancel:
      OnMigrateCancel(static_cast<ShardMigrateCancel&>(*msg));
      return true;
    case sim::MessageType::kShardSnapshotChunk: {
      auto& chunk = static_cast<ShardSnapshotChunk&>(*msg);
      // A corrupt envelope is dropped whole — never half-applied; the
      // source's resend timer recovers it. (Bootstrap chunks were already
      // consumed — and opened — by the Replicator.)
      if (!protocol::OpenChunkPayload(&chunk)) return true;
      OnSnapshotChunk(chunk);
      return true;
    }
    case sim::MessageType::kShardSnapshotAck:
      OnSnapshotAck(static_cast<ShardSnapshotAck&>(*msg));
      return true;
    case sim::MessageType::kShardDeltaBatch:
      OnDeltaBatch(static_cast<ShardDeltaBatch&>(*msg));
      return true;
    case sim::MessageType::kShardDeltaAck:
      OnDeltaAck(static_cast<ShardDeltaAck&>(*msg));
      return true;
    case sim::MessageType::kShardMapUpdate:
      OnMapUpdate(static_cast<ShardMapUpdate&>(*msg));
      return true;
    case sim::MessageType::kShardSeedOffer:
      OnSeedOffer(static_cast<ShardSeedOffer&>(*msg));
      return true;
    case sim::MessageType::kShardSeedDecline:
      OnSeedDecline(static_cast<ShardSeedDecline&>(*msg));
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Routing checks
// ---------------------------------------------------------------------------

ShardMigrator::RouteCheck ShardMigrator::CheckOps(
    const std::vector<protocol::ClientOp>& ops,
    const ShardRange** moved) const {
  for (const protocol::ClientOp& op : ops) {
    for (const Outbound& out : outbound_) {
      if (out.fenced && out.range.Contains(op.key)) {
        return RouteCheck::kFenced;
      }
    }
  }
  if (map_.empty()) return RouteCheck::kServe;
  const NodeId self = node_->logical_id();
  for (const protocol::ClientOp& op : ops) {
    const ShardRange* range = map_.RangeOf(op.key);
    if (range != nullptr && range->owner != self) {
      if (moved != nullptr) *moved = range;
      return RouteCheck::kMoved;
    }
  }
  return RouteCheck::kServe;
}

bool ShardMigrator::OwnsKeys(const std::vector<RecordKey>& keys) const {
  if (map_.empty()) return true;
  const NodeId self = node_->logical_id();
  for (const RecordKey& key : keys) {
    const ShardRange* range = map_.RangeOf(key);
    if (range != nullptr && range->owner != self) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Source role: chunked streaming under receiver-driven credit
// ---------------------------------------------------------------------------

ShardMigrator::Outbound* ShardMigrator::FindOutbound(uint64_t migration_id) {
  for (Outbound& out : outbound_) {
    if (out.id == migration_id) return &out;
  }
  return nullptr;
}

uint64_t ShardMigrator::UnackedChunks() const {
  uint64_t unacked = 0;
  for (const Outbound& out : outbound_) unacked += out.unacked.size();
  return unacked;
}

void ShardMigrator::OnMigrateRequest(const ShardMigrateRequest& req) {
  // Only the current leader of the source group runs migrations; a
  // follower (or a deposed leader) ignores the request and the balancer's
  // timeout cancels it.
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;
  if (Outbound* existing = FindOutbound(req.migration_id)) {
    // Duplicate — unless the balancer re-pointed the stream at a new
    // destination leader (the old one failed over). Instead of cancelling
    // and restarting cold, re-offer the sent chunks' content hashes: the
    // new leader declines what its replicated ingest journal already
    // holds and the stream resumes past the declined prefix.
    if (req.dest_leader != kInvalidNode &&
        req.dest_leader != existing->dest_leader) {
      existing->dest_leader = req.dest_leader;
      existing->peer_codec_mask = 0;  // renegotiate with the new leader
      SendSeedOffer(*existing);
    }
    return;
  }
  stats_.migrations_started++;
  Outbound out;
  out.id = req.migration_id;
  out.range = req.range;
  out.dest = req.dest;
  out.dest_leader =
      req.dest_leader != kInvalidNode ? req.dest_leader : req.dest;
  out.new_version = req.new_version;
  out.balancer = req.from;
  out.timeout = req.timeout;
  out.scan_cursor = req.range.lo;
  // Self-cancellation backstop: if neither the balancer's cancel nor a
  // cutover publish arrives (the balancer may have died), unfence rather
  // than refuse the range's traffic forever. Twice the balancer's own
  // timeout, so the normal cancel always wins the race.
  const Micros self_cancel =
      req.timeout > 0 ? 2 * req.timeout : SecToMicros(30);
  const uint64_t id = out.id;
  node_->loop()->Schedule(self_cancel, [this, id]() {
    protocol::ShardMigrateCancel cancel;
    cancel.migration_id = id;
    OnMigrateCancel(cancel);
  });
  outbound_.push_back(std::move(out));
  if (repl != nullptr) {
    // Journal the Begin record before any chunk leaves the node: a
    // failover mid-stream then finds the migration in the log and aborts
    // it deterministically instead of leaving the destination with an
    // orphaned half-stream only a timeout can clean up.
    JournalMigrationRecord(ReplEntryType::kMigrationBegin, outbound_.back(),
                           [this, id]() {
                             Outbound* begun = FindOutbound(id);
                             if (begun == nullptr) return;  // cancelled
                             begun->begin_logged = true;
                             PumpChunks(id);
                           });
  } else {
    PumpChunks(id);
  }
}

void ShardMigrator::PumpChunks(uint64_t migration_id) {
  Outbound* out = FindOutbound(migration_id);
  if (out == nullptr || out->stream_complete || out->scan_exhausted ||
      out->next_chunk_seq > out->acked_chunk_seq + out->credit) {
    return;
  }
  const uint64_t chunk_cap =
      std::max<uint64_t>(1, node_->config().migration_chunk_records);
  // One committed-records scan + sort per pump, sliced into as many
  // chunks as the credit window allows (re-scanning per chunk would make
  // the stream quadratic in resident records). Values are read at send
  // time: they already include post-cut commits, which also forward as
  // deltas — absolute values make the duplicate application idempotent,
  // and the destination's delta-written skip keeps the newer delta value
  // when the orders race.
  const ShardRange range = out->range;
  const uint64_t cursor = out->scan_cursor;
  std::vector<ReplWrite> remainder;
  for (const auto& [key, value] : node_->engine().CommittedRecords(
           [&range, cursor](const RecordKey& key) {
             return range.Contains(key) && key.key >= cursor;
           })) {
    remainder.push_back(ReplWrite{key, value});
  }
  const auto by_key = [](const ReplWrite& a, const ReplWrite& b) {
    return a.key < b.key;
  };
  // Only the window's worth of smallest keys needs to be ordered; the
  // +1 extra element becomes the next pump's cursor. Selecting before
  // sorting keeps a pump O(remaining + window log window) instead of
  // fully sorting the remainder just to slice its head off.
  const size_t total = remainder.size();
  const uint64_t budget_chunks =
      out->acked_chunk_seq + out->credit - out->next_chunk_seq + 1;
  const size_t need = static_cast<size_t>(budget_chunks * chunk_cap + 1);
  if (total > need) {
    std::nth_element(remainder.begin(),
                     remainder.begin() + static_cast<ptrdiff_t>(need) - 1,
                     remainder.end(), by_key);
    remainder.resize(need);
  }
  std::sort(remainder.begin(), remainder.end(), by_key);
  size_t offset = 0;
  while (!out->scan_exhausted &&
         out->next_chunk_seq <= out->acked_chunk_seq + out->credit) {
    const size_t left = total - offset;
    const bool last = left <= chunk_cap;
    std::vector<ReplWrite> records(
        remainder.begin() + static_cast<ptrdiff_t>(offset),
        remainder.begin() +
            static_cast<ptrdiff_t>(offset + (last ? left : chunk_cap)));
    if (last) {
      out->scan_exhausted = true;
      out->last_chunk_seq = out->next_chunk_seq;
    } else {
      offset += chunk_cap;
      out->scan_cursor = remainder[offset].key.key;
    }
    const uint64_t seq = out->next_chunk_seq++;
    stats_.snapshot_chunks_sent++;
    stats_.snapshot_records_sent += records.size();
    SendChunk(*out, seq, records, last);
    // SendChunk recorded the chunk's content hash; pin the resume point
    // that follows it (a decline of [1..seq] restarts the scan here).
    Outbound::SentDigest& digest = out->sent_digests[seq];
    digest.next_cursor = out->scan_cursor;
    digest.exhausted = out->scan_exhausted;
    if (obs::GlobalTracer().enabled()) {
      out->chunk_spans[seq] = obs::GlobalTracer().BeginSpan(
          obs::SystemContext(), "migrate.chunk", node_->id(),
          node_->loop()->Now());
    }
    out->unacked[seq] = std::move(records);
    stats_.peak_unacked_chunks = std::max<uint64_t>(
        stats_.peak_unacked_chunks, out->unacked.size());
  }
  out->last_progress_at = node_->loop()->Now();
  ArmResendTimer(migration_id);
}

void ShardMigrator::SendChunk(Outbound& out, uint64_t seq,
                              const std::vector<ReplWrite>& records,
                              bool last) {
  auto chunk = std::make_unique<ShardSnapshotChunk>();
  chunk->from = node_->id();
  chunk->to = out.dest_leader;
  chunk->migration_id = out.id;
  chunk->group = out.dest;
  chunk->range = out.range;
  chunk->seq = seq;
  chunk->last = last;
  chunk->records = records;
  // Seal under whatever the destination advertised (raw until its first
  // ack). Sealing always stamps the content hash — raw chunks too — so
  // the receiver's journal has the identity a later re-offer compares.
  const protocol::EnvelopeBytes bytes = protocol::SealChunkPayload(
      common::PickWireCodec(out.peer_codec_mask,
                            node_->config().wan_compression),
      chunk.get());
  stats_.wan_bytes_raw += bytes.raw;
  stats_.wan_bytes_wire += bytes.wire;
  out.sent_digests[seq].hash = chunk->content_hash;
  node_->network()->Send(std::move(chunk));
}

void ShardMigrator::ArmResendTimer(uint64_t migration_id) {
  Outbound* out = FindOutbound(migration_id);
  if (out == nullptr || out->resend_armed) return;
  out->resend_armed = true;
  const Micros check = node_->config().migration_resend_timeout;
  node_->loop()->Schedule(check, [this, migration_id]() {
    Outbound* late = FindOutbound(migration_id);
    if (late == nullptr || node_->crashed()) return;
    late->resend_armed = false;
    if (late->stream_complete || late->unacked.empty()) return;
    if (node_->loop()->Now() - late->last_progress_at >=
        node_->config().migration_resend_timeout) {
      // No progress in a full window: chunks (or their acks) were lost.
      // Re-send everything outstanding; duplicates re-ack at the
      // receiver's position, so a lost ack also recovers here.
      for (const auto& [seq, records] : late->unacked) {
        stats_.chunk_retransmits++;
        SendChunk(*late, seq,
                  records, seq == late->last_chunk_seq);
      }
      late->last_progress_at = node_->loop()->Now();
    }
    ArmResendTimer(migration_id);
  });
}

void ShardMigrator::OnSnapshotAck(const ShardSnapshotAck& ack) {
  Outbound* out = FindOutbound(ack.migration_id);
  if (out == nullptr || out->stream_complete) return;
  // Take the grant only from acks at (or past) the current position: a
  // reordered older ack can carry a larger grant than the receiver's
  // buffer now has room for, and over-sending just gets chunks dropped
  // at the credit-overrun check — a resend-timeout stall for nothing.
  if (ack.seq >= out->acked_chunk_seq) {
    out->credit = std::max<uint64_t>(1, ack.credit);
  }
  out->peer_codec_mask = ack.codec_mask;
  if (ack.seq > out->acked_chunk_seq) {
    out->acked_chunk_seq = ack.seq;
    out->unacked.erase(out->unacked.begin(),
                       out->unacked.upper_bound(ack.seq));
    while (!out->chunk_spans.empty() &&
           out->chunk_spans.begin()->first <= ack.seq) {
      obs::GlobalTracer().EndSpan(out->chunk_spans.begin()->second,
                                  node_->loop()->Now());
      out->chunk_spans.erase(out->chunk_spans.begin());
    }
    out->last_progress_at = node_->loop()->Now();
  }
  if (out->last_chunk_seq != 0 &&
      out->acked_chunk_seq >= out->last_chunk_seq) {
    out->stream_complete = true;
    out->unacked.clear();
    stats_.streams_completed++;
    FenceRange(*out);
    MaybeReportCutover(*out);
    return;
  }
  PumpChunks(ack.migration_id);
}

void ShardMigrator::OnMigrateCancel(const ShardMigrateCancel& req) {
  // Destination side: drop the ordering buffer and tombstone the id so a
  // straggler (or retransmitted, or cancel-outrun) chunk cannot recreate
  // it — its stale records could overwrite a later migration of the same
  // range. Records already applied stay in the store as unreachable
  // garbage (the map never moved).
  inbound_.erase(req.migration_id);
  ingest_journal_.erase(req.migration_id);
  retired_inbound_.insert(req.migration_id);
  for (auto it = outbound_.begin(); it != outbound_.end(); ++it) {
    if (it->id == req.migration_id) {
      stats_.migrations_cancelled++;
      JournalEnd(*it);
      outbound_.erase(it);  // unfences the range
      return;
    }
  }
}

void ShardMigrator::FenceRange(Outbound& out) {
  out.fenced = true;
  // Abort in-flight ACTIVE branches touching the range (the client driver
  // retries them; post-cutover they route to the destination). PREPARED
  // branches drain: their decision resolves here and commit write sets
  // still forward as deltas.
  std::vector<TxnId> to_abort;
  for (const auto& [txn, info] : node_->branches_) {
    const Xid xid{txn, node_->logical_id()};
    if (node_->engine().StateOf(xid) != storage::TxnState::kActive) continue;
    for (const RecordKey& key : info.keys) {
      if (out.range.Contains(key)) {
        to_abort.push_back(txn);
        break;
      }
    }
  }
  for (TxnId txn : to_abort) node_->AbortBranchForMigration(txn);
  stats_.fence_aborts += to_abort.size();
}

void ShardMigrator::OnCommittedWrites(
    const std::vector<std::pair<RecordKey, int64_t>>& writes) {
  for (Outbound& out : outbound_) {
    std::vector<ReplWrite> intersecting;
    for (const auto& [key, value] : writes) {
      if (out.range.Contains(key)) {
        intersecting.push_back(ReplWrite{key, value});
      }
    }
    if (intersecting.empty()) continue;
    auto batch = std::make_unique<ShardDeltaBatch>();
    batch->from = node_->id();
    batch->to = out.dest_leader;
    batch->migration_id = out.id;
    batch->seq = out.next_seq++;
    stats_.delta_batches_sent++;
    stats_.delta_writes_sent += intersecting.size();
    batch->writes = intersecting;
    // Kept until acked: a destination-leader failover resends the suffix
    // past the new leader's journaled delta position.
    out.unacked_deltas[batch->seq] = std::move(intersecting);
    node_->network()->Send(std::move(batch));
  }
}

void ShardMigrator::OnDeltaAck(const ShardDeltaAck& ack) {
  Outbound* out = FindOutbound(ack.migration_id);
  if (out == nullptr) return;
  out->acked_seq = std::max(out->acked_seq, ack.seq);
  out->unacked_deltas.erase(
      out->unacked_deltas.begin(),
      out->unacked_deltas.upper_bound(out->acked_seq));
  MaybeReportCutover(*out);
}

void ShardMigrator::OnBranchResolved() {
  for (Outbound& out : outbound_) MaybeReportCutover(out);
}

void ShardMigrator::MaybeReportCutover(Outbound& out) {
  if (!out.fenced || !out.stream_complete || out.cutover_reported) return;
  if (out.acked_seq + 1 != out.next_seq) return;  // deltas in flight
  // Any live branch still touching the range (a prepared branch awaiting
  // its decision) blocks the cutover: its commit must forward first.
  for (const auto& [txn, info] : node_->branches_) {
    for (const RecordKey& key : info.keys) {
      if (out.range.Contains(key)) return;
    }
  }
  // Prepared branches installed by a failover (InstallPreparedBranch)
  // have no branches_ entry; check the engine's in-doubt set directly —
  // their write sets must still forward as deltas when decided.
  for (const Xid& xid : node_->engine().PreparedXids()) {
    for (const auto& [key, value] : node_->engine().WriteSetOf(xid)) {
      if (out.range.Contains(key)) return;
    }
  }
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && out.begin_logged) {
    if (out.cutover_logged) {
      SendCutoverReady(out, /*logged=*/true);
      return;
    }
    if (out.cutover_pending) return;  // record already replicating
    // Seal the migration in the group log BEFORE reporting: the fence now
    // survives a source failover (a promoted leader re-fences from the
    // record and re-reports), so the balancer's publish cannot race a
    // leadership change into a lost write.
    out.cutover_pending = true;
    const uint64_t id = out.id;
    JournalMigrationRecord(ReplEntryType::kMigrationCutover, out,
                           [this, id]() {
                             Outbound* sealed = FindOutbound(id);
                             if (sealed == nullptr) return;  // cancelled
                             sealed->cutover_pending = false;
                             sealed->cutover_logged = true;
                             MaybeReportCutover(*sealed);
                           });
    return;
  }
  SendCutoverReady(out, /*logged=*/false);
}

void ShardMigrator::SendCutoverReady(Outbound& out, bool logged) {
  out.cutover_reported = true;
  stats_.cutovers_reported++;
  auto ready = std::make_unique<ShardCutoverReady>();
  ready->from = node_->id();
  ready->to = out.balancer;
  ready->migration_id = out.id;
  ready->range = out.range;
  ready->range.owner = out.dest;
  ready->range.version = out.new_version;
  ready->logged = logged;
  node_->network()->Send(std::move(ready));
}

// ---------------------------------------------------------------------------
// Replicated migration state (source side)
// ---------------------------------------------------------------------------

void ShardMigrator::JournalMigrationRecord(ReplEntryType type,
                                           const Outbound& out,
                                           std::function<void()> on_quorum) {
  replication::Replicator* repl = node_->replicator();
  if (repl == nullptr || !repl->IsLeader()) return;
  MigrationRecord record;
  record.migration_id = out.id;
  record.range = out.range;
  if (type == ReplEntryType::kMigrationCutover) {
    record.range.owner = out.dest;
    record.range.version = out.new_version;
    // All deltas were acked (MaybeReportCutover precondition), so this is
    // the exact resume point: a promoted leader continues the delta
    // sequence here for drain commits of installed prepared branches.
    record.delta_next_seq = out.next_seq;
  }
  record.dest = out.dest;
  record.dest_leader = out.dest_leader;
  record.new_version = out.new_version;
  record.balancer = out.balancer;
  record.timeout = out.timeout;
  repl->ReplicateMigrationRecord(type, record, std::move(on_quorum));
}

void ShardMigrator::JournalEnd(const Outbound& out) {
  // Keyed on the replicator's tracking, NOT on begin_logged: a cancel can
  // land inside the Begin record's quorum round trip, and the Begin was
  // already appended (and is pinning compaction) the moment it entered
  // the log. Leaders append the End; a deposed leader skips it and the
  // promoted leader resolves the record at promotion instead.
  replication::Replicator* repl = node_->replicator();
  if (repl == nullptr || !repl->HasUnresolvedMigration(out.id)) return;
  JournalMigrationRecord(ReplEntryType::kMigrationEnd, out, nullptr);
}

void ShardMigrator::OnInheritedMigrations(
    const std::vector<replication::Replicator::InheritedMigration>&
        migrations) {
  replication::Replicator* repl = node_->replicator();
  for (const auto& inherited : migrations) {
    const MigrationRecord& record = inherited.record;
    if (FindOutbound(record.migration_id) != nullptr) continue;
    if (!inherited.cutover_logged) {
      // Begin only: the stream and fence state died with the deposed
      // leader. Abort deterministically — journal the End, flush the
      // destination's half-applied buffer, tell the balancer so it
      // cancels now instead of at the timeout. The range keeps serving
      // here; placement never changed.
      stats_.migration_aborts_from_log++;
      GEOTP_INFO("migrator " << node_->id() << ": aborting inherited "
                             << "migration " << record.migration_id
                             << " from the log (no cutover record)");
      if (repl != nullptr && repl->IsLeader()) {
        MigrationRecord end = record;
        repl->ReplicateMigrationRecord(ReplEntryType::kMigrationEnd, end,
                                       nullptr);
      }
      auto cancel = std::make_unique<ShardMigrateCancel>();
      cancel->from = node_->id();
      cancel->to = record.dest_leader;
      cancel->migration_id = record.migration_id;
      node_->network()->Send(std::move(cancel));
      auto aborted = std::make_unique<ShardMigrateAborted>();
      aborted->from = node_->id();
      aborted->to = record.balancer;
      aborted->migration_id = record.migration_id;
      node_->network()->Send(std::move(aborted));
      continue;
    }
    // Cutover logged: the migration is sealed — every chunk and delta is
    // quorum-durable at the destination. Re-fence the range (BEFORE the
    // leadership announce, so no DM can route new work onto it) and
    // re-report readiness; the balancer publishes even though our epoch
    // moved, because the journaled record — not the deposed leader's
    // volatile fence — is what guarantees the transfer.
    stats_.migration_resumes++;
    GEOTP_INFO("migrator " << node_->id() << ": resuming migration "
                           << record.migration_id
                           << " from the journaled cutover record");
    Outbound out;
    out.id = record.migration_id;
    out.range = record.range;  // owner = dest per the cutover record;
                               // fencing tests span only
    out.dest = record.dest;
    out.dest_leader = record.dest_leader;
    out.new_version = record.new_version;
    out.balancer = record.balancer;
    out.timeout = record.timeout;
    out.scan_exhausted = true;
    out.stream_complete = true;
    out.begin_logged = true;
    out.cutover_logged = true;
    out.resumed = true;
    out.next_seq = std::max<uint64_t>(1, record.delta_next_seq);
    out.acked_seq = out.next_seq - 1;
    const Micros self_cancel =
        record.timeout > 0 ? 2 * record.timeout : SecToMicros(30);
    const uint64_t id = out.id;
    node_->loop()->Schedule(self_cancel, [this, id]() {
      protocol::ShardMigrateCancel cancel;
      cancel.migration_id = id;
      OnMigrateCancel(cancel);
    });
    outbound_.push_back(std::move(out));
    FenceRange(outbound_.back());
    MaybeReportCutover(outbound_.back());
  }
}

// ---------------------------------------------------------------------------
// Destination role: ordered ingest, credit grants, delta interleave
// ---------------------------------------------------------------------------

void ShardMigrator::ApplyRecords(std::vector<ReplWrite> records,
                                 uint64_t migration_id, uint64_t chunk_seq,
                                 uint64_t delta_seq, uint64_t content_hash,
                                 std::function<bool()> still_valid,
                                 std::function<void()> done) {
  // Bulk ingest takes real engine time, charged per chunk (per-record
  // cost x chunk size); the records become visible — and durable, and
  // acked — only when it completes. This is what makes an oversized
  // migration's transfer time scale with its resident data, and why the
  // balancer splits a hot sub-range out of a big chunk instead of
  // shipping all of it.
  const Micros cost =
      static_cast<Micros>(records.size()) *
      node_->config().migration_apply_cost;
  node_->loop()->Schedule(
      cost, [this, records = std::move(records), migration_id, chunk_seq,
             delta_seq, content_hash, still_valid = std::move(still_valid),
             done = std::move(done)]() mutable {
        if (node_->crashed()) return;
        if (!still_valid()) return;  // cancelled during the ingest delay
        // The (leader's) local store always applies directly — the
        // replicated entry stream below only reaches followers (a leader
        // reflects its own appends through the engine, never through
        // ApplyEntry).
        for (const ReplWrite& w : records) {
          node_->engine().store().Apply(w.key, w.value);
        }
        replication::Replicator* repl = node_->replicator();
        if (repl != nullptr && repl->IsLeader()) {
          // Funnel through the replica group's log so followers apply the
          // same records via the LogShipper entry stream; the ack waits
          // for quorum durability. The entry is tagged with the stream
          // position it covers, journaling the chunk ack itself. The
          // synthetic xid never collides with coordinator txn ids
          // (middleware ordinals are small; 0xFFFF is reserved).
          const Xid xid{
              MakeTxnId(0xFFFFu,
                        (static_cast<uint64_t>(node_->id()) << 24) |
                            ++synthetic_seq_),
              node_->logical_id()};
          repl->ReplicateIngest(xid, std::move(records), migration_id,
                                chunk_seq, delta_seq, content_hash,
                                std::move(done));
          return;
        }
        done();
      });
}

void ShardMigrator::SendChunkAck(uint64_t migration_id, NodeId source) {
  auto it = inbound_.find(migration_id);
  if (it == inbound_.end()) return;
  const uint64_t window =
      std::max<uint64_t>(1, node_->config().migration_stream_window);
  const uint64_t buffered = it->second.pending_chunks.size();
  auto ack = std::make_unique<ShardSnapshotAck>();
  ack->from = node_->id();
  ack->to = source;
  ack->migration_id = migration_id;
  ack->seq = it->second.applied_chunk_seq;
  // Receiver-driven flow control: grant only what the ordering buffer has
  // room for. Never zero — the grant rides on an apply ack, so at least
  // one slot just freed.
  ack->credit = window > buffered ? window - buffered : 1;
  ack->codec_mask = LocalCodecMask(node_);
  node_->network()->Send(std::move(ack));
}

void ShardMigrator::OnSnapshotChunk(const ShardSnapshotChunk& chunk) {
  // migration_id == 0 chunks are replication bootstrap snapshots and are
  // consumed by the Replicator before this handler runs.
  if (chunk.migration_id == 0) return;
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;  // balancer will retry
  if (retired_inbound_.count(chunk.migration_id) > 0) return;  // cancelled
  const NodeId source = chunk.from;
  const uint64_t id = chunk.migration_id;
  Inbound& in = inbound_[id];
  if (in.range.hi == 0) in.range = chunk.range;
  if (chunk.seq <= in.applied_chunk_seq) {
    // Retransmit of an applied chunk (its ack was lost): re-ack the
    // current position so the source advances.
    SendChunkAck(id, source);
    return;
  }
  const uint64_t window =
      std::max<uint64_t>(1, node_->config().migration_stream_window);
  const bool already_buffered = in.pending_chunks.count(chunk.seq) > 0;
  if (!already_buffered && in.pending_chunks.size() >= window) {
    return;  // credit overrun; the retransmit path recovers
  }
  Inbound::BufferedChunk& buffered = in.pending_chunks[chunk.seq];
  buffered.records = chunk.records;
  buffered.last = chunk.last;
  buffered.content_hash = chunk.content_hash;
  stats_.peak_buffered_chunks = std::max<uint64_t>(
      stats_.peak_buffered_chunks, in.pending_chunks.size());
  DrainIngest(id, source);
}

void ShardMigrator::OnDeltaBatch(const ShardDeltaBatch& batch) {
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;
  if (retired_inbound_.count(batch.migration_id) > 0) return;  // cancelled
  Inbound& in = inbound_[batch.migration_id];
  if (batch.seq <= in.applied_seq) return;  // duplicate
  in.pending[batch.seq] = batch.writes;
  DrainIngest(batch.migration_id, batch.from);
}

void ShardMigrator::DrainIngest(uint64_t migration_id, NodeId source) {
  auto it = inbound_.find(migration_id);
  if (it == inbound_.end()) return;
  Inbound& in = it->second;
  if (in.applying) return;  // one bounded ingest at a time
  const auto still_inbound = [this, migration_id]() {
    auto live = inbound_.find(migration_id);
    return live != inbound_.end() && live->second.applying;
  };

  // Deltas first: they are small, carry post-cut (newer) values, and
  // applying them promptly is what lets them interleave behind the chunk
  // cursor instead of queueing until the stream ends (the drain at
  // cutover waits on their acks). A gap in the delta sequence falls
  // through to the chunk stream below.
  while (!in.pending.empty() && in.pending.begin()->first <= in.applied_seq) {
    in.pending.erase(in.pending.begin());  // stale duplicate
  }
  if (!in.pending.empty() &&
      in.pending.begin()->first == in.applied_seq + 1) {
    std::vector<ReplWrite> writes = std::move(in.pending.begin()->second);
    in.pending.erase(in.pending.begin());
    in.applying = true;
    const uint64_t seq = in.applied_seq + 1;
    if (!in.stream_complete) {
      for (const ReplWrite& w : writes) in.delta_written.insert(w.key);
    }
    ApplyRecords(std::move(writes), migration_id, 0, seq,
                 /*content_hash=*/0, still_inbound,
                 [this, source, migration_id, seq]() {
                   auto live = inbound_.find(migration_id);
                   if (live == inbound_.end()) return;  // cancelled
                   live->second.applying = false;
                   live->second.applied_seq = seq;
                   stats_.delta_batches_applied++;
                   auto ack = std::make_unique<ShardDeltaAck>();
                   ack->from = node_->id();
                   ack->to = source;
                   ack->migration_id = migration_id;
                   ack->seq = seq;
                   node_->network()->Send(std::move(ack));
                   DrainIngest(migration_id, source);
                 });
    return;
  }

  // Chunks, in sequence order. Out-of-order arrivals (independent
  // per-message link delays) wait in the bounded pending_chunks buffer.
  // Prune stale duplicates first (a retransmit can re-buffer the chunk
  // that was mid-apply when it arrived — seq == applied+1 at buffering
  // time, already applied now); left in place they would pin window
  // slots forever and shrink every future credit grant.
  while (!in.pending_chunks.empty() &&
         in.pending_chunks.begin()->first <= in.applied_chunk_seq) {
    in.pending_chunks.erase(in.pending_chunks.begin());
  }
  auto chunk_it = in.pending_chunks.find(in.applied_chunk_seq + 1);
  if (chunk_it != in.pending_chunks.end()) {
    Inbound::BufferedChunk chunk = std::move(chunk_it->second);
    in.pending_chunks.erase(chunk_it);
    // Deltas interleave behind the stream cursor: any key a delta already
    // wrote carries a post-cut (newer) value, so the chunk's committed-
    // cut copy must not overwrite it. Ingests are serialized by the
    // `applying` flag, so the set cannot change during this one.
    std::vector<ReplWrite> records;
    records.reserve(chunk.records.size());
    for (ReplWrite& w : chunk.records) {
      if (in.delta_written.count(w.key) > 0) {
        stats_.chunk_records_superseded++;
        continue;
      }
      records.push_back(std::move(w));
    }
    const uint64_t seq = in.applied_chunk_seq + 1;
    const bool last = chunk.last;
    const size_t record_count = records.size();
    in.applying = true;
    // The journaled hash is the FULL chunk's identity (pre-supersede):
    // that is what the source's digest for this seq carries, so that is
    // what a re-offer after a leader failover must match against.
    ApplyRecords(std::move(records), migration_id, seq, 0,
                 chunk.content_hash, still_inbound,
                 [this, migration_id, source, seq, last, record_count]() {
                   auto live = inbound_.find(migration_id);
                   if (live == inbound_.end()) return;  // cancelled
                   Inbound& applied = live->second;
                   applied.applying = false;
                   applied.applied_chunk_seq = seq;
                   // Counted only here: a cancel or crash during the
                   // ingest delay means the records never hit the store.
                   stats_.snapshot_chunks_applied++;
                   stats_.snapshot_records_applied += record_count;
                   if (last) {
                     applied.stream_complete = true;
                     applied.delta_written.clear();
                   }
                   SendChunkAck(migration_id, source);
                   DrainIngest(migration_id, source);
                 });
    return;
  }

}

// ---------------------------------------------------------------------------
// Hash-decline resume: re-seed a re-pointed stream instead of restarting
// ---------------------------------------------------------------------------

void ShardMigrator::NoteIngestApplied(uint64_t migration_id,
                                      uint64_t chunk_seq, uint64_t delta_seq,
                                      uint64_t content_hash) {
  if (retired_inbound_.count(migration_id) > 0) return;
  IngestJournal& journal = ingest_journal_[migration_id];
  if (chunk_seq != 0) journal.chunk_hashes[chunk_seq] = content_hash;
  journal.max_delta_seq = std::max(journal.max_delta_seq, delta_seq);
}

void ShardMigrator::SendSeedOffer(Outbound& out) {
  stats_.seed_offers_sent++;
  auto offer = std::make_unique<ShardSeedOffer>();
  offer->from = node_->id();
  offer->to = out.dest_leader;
  offer->migration_id = out.id;
  offer->group = out.dest;
  offer->range = out.range;
  // Replay the ORIGINAL hashes, not fresh scans: the destination's journal
  // holds what was actually sent, and values here may have moved on.
  for (const auto& [seq, sent] : out.sent_digests) {
    protocol::SeedDigest digest;
    digest.seq = seq;
    digest.hash = sent.hash;
    digest.last = sent.exhausted;
    offer->digests.push_back(digest);
  }
  node_->network()->Send(std::move(offer));
}

void ShardMigrator::OnSeedOffer(const ShardSeedOffer& offer) {
  // migration_id == 0 offers are replication bootstrap re-seeds; on a
  // replicated node the Replicator consumed them before this handler.
  if (offer.migration_id == 0) return;
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;
  if (retired_inbound_.count(offer.migration_id) > 0) return;  // done here
  const uint64_t id = offer.migration_id;
  Inbound& in = inbound_[id];
  if (in.range.hi == 0) in.range = offer.range;
  // Walk the offered digests: extend the held prefix with every chunk the
  // replicated ingest journal holds under the SAME content hash — those
  // are quorum-durable on this replica set and need not re-cross the WAN.
  const auto journal_it = ingest_journal_.find(id);
  uint64_t held = in.applied_chunk_seq;
  bool exhausted_at_held = in.stream_complete;
  for (const protocol::SeedDigest& digest : offer.digests) {
    if (digest.seq <= held) continue;
    if (digest.seq != held + 1) break;  // gap: prefix cannot extend
    if (journal_it == ingest_journal_.end()) break;
    const auto hash_it = journal_it->second.chunk_hashes.find(digest.seq);
    if (hash_it == journal_it->second.chunk_hashes.end() ||
        hash_it->second != digest.hash) {
      break;
    }
    held = digest.seq;
    exhausted_at_held = digest.last;
  }
  in.applied_chunk_seq = held;
  if (journal_it != ingest_journal_.end()) {
    in.applied_seq =
        std::max(in.applied_seq, journal_it->second.max_delta_seq);
  }
  in.pending_chunks.erase(in.pending_chunks.begin(),
                          in.pending_chunks.upper_bound(held));
  if (exhausted_at_held && !in.stream_complete) {
    in.stream_complete = true;
    in.delta_written.clear();
  }
  auto decline = std::make_unique<ShardSeedDecline>();
  decline->from = node_->id();
  decline->to = offer.from;
  decline->migration_id = id;
  decline->group = offer.group;
  for (uint64_t seq = 1; seq <= held; ++seq) {
    decline->declined.push_back(seq);
  }
  decline->delta_seq = in.applied_seq;
  const uint64_t window =
      std::max<uint64_t>(1, node_->config().migration_stream_window);
  const uint64_t buffered = in.pending_chunks.size();
  decline->credit = window > buffered ? window - buffered : 1;
  decline->codec_mask = LocalCodecMask(node_);
  node_->network()->Send(std::move(decline));
}

void ShardMigrator::OnSeedDecline(const ShardSeedDecline& decline) {
  if (decline.migration_id == 0) return;  // bootstrap path (Replicator's)
  Outbound* out = FindOutbound(decline.migration_id);
  if (out == nullptr) return;
  out->peer_codec_mask = decline.codec_mask;
  stats_.chunks_declined += decline.declined.size();
  // The new leader's journaled delta position supersedes the old ack
  // trail; resend only the unacked suffix past it.
  out->acked_seq = std::max(out->acked_seq, decline.delta_seq);
  out->unacked_deltas.erase(
      out->unacked_deltas.begin(),
      out->unacked_deltas.upper_bound(out->acked_seq));
  for (const auto& [seq, writes] : out->unacked_deltas) {
    auto batch = std::make_unique<ShardDeltaBatch>();
    batch->from = node_->id();
    batch->to = out->dest_leader;
    batch->migration_id = out->id;
    batch->seq = seq;
    batch->writes = writes;
    stats_.delta_batches_sent++;
    node_->network()->Send(std::move(batch));
  }
  if (!out->stream_complete) {
    // Rewind the chunk stream to the end of the declined prefix. Chunks
    // past it are re-scanned fresh (values may have moved on — absolute
    // values keep the duplicate application idempotent) rather than
    // replayed from a buffer.
    const uint64_t held =
        decline.declined.empty() ? 0 : decline.declined.back();
    out->acked_chunk_seq = std::max(out->acked_chunk_seq, held);
    out->next_chunk_seq = out->acked_chunk_seq + 1;
    out->unacked.clear();
    for (auto& [seq, span] : out->chunk_spans) {
      obs::GlobalTracer().EndSpan(span, node_->loop()->Now());
    }
    out->chunk_spans.clear();
    const auto digest = out->sent_digests.find(out->acked_chunk_seq);
    if (digest != out->sent_digests.end()) {
      out->scan_cursor = digest->second.next_cursor;
      out->scan_exhausted = digest->second.exhausted;
    } else {
      out->scan_cursor = out->range.lo;
      out->scan_exhausted = false;
    }
    out->last_chunk_seq =
        out->scan_exhausted ? out->acked_chunk_seq : 0;
    out->sent_digests.erase(
        out->sent_digests.upper_bound(out->acked_chunk_seq),
        out->sent_digests.end());
    out->credit = std::max<uint64_t>(1, decline.credit);
    out->last_progress_at = node_->loop()->Now();
    if (out->last_chunk_seq != 0 &&
        out->acked_chunk_seq >= out->last_chunk_seq) {
      // Everything was declined and the scan had finished: the stream is
      // complete without another chunk crossing the WAN.
      out->stream_complete = true;
      stats_.streams_completed++;
      FenceRange(*out);
      MaybeReportCutover(*out);
      return;
    }
    PumpChunks(out->id);
    return;
  }
  MaybeReportCutover(*out);
}

// ---------------------------------------------------------------------------
// Map adoption / lifecycle
// ---------------------------------------------------------------------------

void ShardMigrator::OnMapUpdate(const ShardMapUpdate& update) {
  map_.Adopt(update.entries);
  // Migrations whose range the map now places at the destination are
  // complete: journal their End record (the log must stop pinning them)
  // and drop their state (redirects come from the map from here on).
  const NodeId self = node_->logical_id();
  for (auto it = outbound_.begin(); it != outbound_.end();) {
    const ShardRange* range =
        map_.RangeOf(RecordKey{it->range.table, it->range.lo});
    if (range != nullptr && range->owner != self) {
      JournalEnd(*it);
      it = outbound_.erase(it);
    } else {
      ++it;
    }
  }
  // Destination side: once the map places a migration's range here, its
  // delta stream is over (the source only reported cutover after every
  // delta was acked) — the ordering buffer can go.
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    const ShardRange* range =
        map_.RangeOf(RecordKey{it->second.range.table, it->second.range.lo});
    const bool complete = it->second.stream_complete && range != nullptr &&
                          range->owner == self &&
                          range->version >= it->second.range.version;
    if (complete) {
      retired_inbound_.insert(it->first);
      ingest_journal_.erase(it->first);
      it = inbound_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardMigrator::OnCrash() {
  outbound_.clear();
  inbound_.clear();
  // The ingest journal is volatile by design: a replica that crashed
  // rebuilds it only from entries applied after restart, so a leader
  // promoted from it declines nothing and takes the full resend instead.
  ingest_journal_.clear();
}

}  // namespace sharding
}  // namespace geotp
