#include "sharding/migrator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "datasource/data_source.h"

namespace geotp {
namespace sharding {

using protocol::ReplWrite;
using protocol::ShardCutoverReady;
using protocol::ShardDeltaAck;
using protocol::ShardDeltaBatch;
using protocol::ShardMapUpdate;
using protocol::ShardMigrateCancel;
using protocol::ShardMigrateRequest;
using protocol::ShardSnapshotAck;
using protocol::ShardSnapshotChunk;

bool ShardMigrator::HandleMessage(sim::MessageBase* msg) {
  switch (msg->type()) {
    case sim::MessageType::kShardMigrateRequest:
      OnMigrateRequest(static_cast<ShardMigrateRequest&>(*msg));
      return true;
    case sim::MessageType::kShardMigrateCancel:
      OnMigrateCancel(static_cast<ShardMigrateCancel&>(*msg));
      return true;
    case sim::MessageType::kShardSnapshotChunk:
      OnSnapshotChunk(static_cast<ShardSnapshotChunk&>(*msg));
      return true;
    case sim::MessageType::kShardSnapshotAck:
      OnSnapshotAck(static_cast<ShardSnapshotAck&>(*msg));
      return true;
    case sim::MessageType::kShardDeltaBatch:
      OnDeltaBatch(static_cast<ShardDeltaBatch&>(*msg));
      return true;
    case sim::MessageType::kShardDeltaAck:
      OnDeltaAck(static_cast<ShardDeltaAck&>(*msg));
      return true;
    case sim::MessageType::kShardMapUpdate:
      OnMapUpdate(static_cast<ShardMapUpdate&>(*msg));
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Routing checks
// ---------------------------------------------------------------------------

ShardMigrator::RouteCheck ShardMigrator::CheckOps(
    const std::vector<protocol::ClientOp>& ops,
    const ShardRange** moved) const {
  for (const protocol::ClientOp& op : ops) {
    for (const Outbound& out : outbound_) {
      if (out.fenced && out.range.Contains(op.key)) {
        return RouteCheck::kFenced;
      }
    }
  }
  if (map_.empty()) return RouteCheck::kServe;
  const NodeId self = node_->logical_id();
  for (const protocol::ClientOp& op : ops) {
    const ShardRange* range = map_.RangeOf(op.key);
    if (range != nullptr && range->owner != self) {
      if (moved != nullptr) *moved = range;
      return RouteCheck::kMoved;
    }
  }
  return RouteCheck::kServe;
}

bool ShardMigrator::OwnsKeys(const std::vector<RecordKey>& keys) const {
  if (map_.empty()) return true;
  const NodeId self = node_->logical_id();
  for (const RecordKey& key : keys) {
    const ShardRange* range = map_.RangeOf(key);
    if (range != nullptr && range->owner != self) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Source role
// ---------------------------------------------------------------------------

void ShardMigrator::OnMigrateRequest(const ShardMigrateRequest& req) {
  // Only the current leader of the source group runs migrations; a
  // follower (or a deposed leader) ignores the request and the balancer's
  // timeout cancels it.
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;
  for (const Outbound& out : outbound_) {
    if (out.id == req.migration_id) return;  // duplicate
  }
  stats_.migrations_started++;
  Outbound out;
  out.id = req.migration_id;
  out.range = req.range;
  out.dest = req.dest;
  out.dest_leader =
      req.dest_leader != kInvalidNode ? req.dest_leader : req.dest;
  out.new_version = req.new_version;
  out.balancer = req.from;

  // Snapshot cut: the COMMITTED records of the range, captured atomically
  // within this event (single-threaded actor; live branches' in-place
  // writes are excluded via their undo). Writes committed after this
  // instant forward as deltas.
  auto chunk = std::make_unique<ShardSnapshotChunk>();
  chunk->from = node_->id();
  chunk->to = out.dest_leader;
  chunk->migration_id = out.id;
  chunk->group = out.dest;
  chunk->range = out.range;
  const ShardRange range = out.range;
  for (const auto& [key, value] : node_->engine().CommittedRecords(
           [&range](const RecordKey& key) { return range.Contains(key); })) {
    chunk->records.push_back(ReplWrite{key, value});
  }
  stats_.snapshot_records_sent += chunk->records.size();
  node_->network()->Send(std::move(chunk));
  // Self-cancellation backstop: if neither the balancer's cancel nor a
  // cutover publish arrives (the balancer may have died), unfence rather
  // than refuse the range's traffic forever. Twice the balancer's own
  // timeout, so the normal cancel always wins the race.
  const Micros self_cancel =
      req.timeout > 0 ? 2 * req.timeout : SecToMicros(30);
  const uint64_t id = out.id;
  node_->loop()->Schedule(self_cancel, [this, id]() {
    protocol::ShardMigrateCancel cancel;
    cancel.migration_id = id;
    OnMigrateCancel(cancel);
  });
  outbound_.push_back(std::move(out));
}

void ShardMigrator::OnMigrateCancel(const ShardMigrateCancel& req) {
  // Destination side: drop the ordering buffer. Records already applied
  // stay in the store as unreachable garbage (the map never moved).
  inbound_.erase(req.migration_id);
  for (auto it = outbound_.begin(); it != outbound_.end(); ++it) {
    if (it->id == req.migration_id) {
      stats_.migrations_cancelled++;
      outbound_.erase(it);  // unfences the range
      return;
    }
  }
}

void ShardMigrator::OnSnapshotAck(const ShardSnapshotAck& ack) {
  for (Outbound& out : outbound_) {
    if (out.id != ack.migration_id || out.snapshot_acked) continue;
    out.snapshot_acked = true;
    FenceRange(out);
    MaybeReportCutover(out);
    return;
  }
}

void ShardMigrator::FenceRange(Outbound& out) {
  out.fenced = true;
  // Abort in-flight ACTIVE branches touching the range (the client driver
  // retries them; post-cutover they route to the destination). PREPARED
  // branches drain: their decision resolves here and commit write sets
  // still forward as deltas.
  std::vector<TxnId> to_abort;
  for (const auto& [txn, info] : node_->branches_) {
    const Xid xid{txn, node_->logical_id()};
    if (node_->engine().StateOf(xid) != storage::TxnState::kActive) continue;
    for (const RecordKey& key : info.keys) {
      if (out.range.Contains(key)) {
        to_abort.push_back(txn);
        break;
      }
    }
  }
  for (TxnId txn : to_abort) node_->AbortBranchForMigration(txn);
  stats_.fence_aborts += to_abort.size();
}

void ShardMigrator::OnCommittedWrites(
    const std::vector<std::pair<RecordKey, int64_t>>& writes) {
  for (Outbound& out : outbound_) {
    std::vector<ReplWrite> intersecting;
    for (const auto& [key, value] : writes) {
      if (out.range.Contains(key)) {
        intersecting.push_back(ReplWrite{key, value});
      }
    }
    if (intersecting.empty()) continue;
    auto batch = std::make_unique<ShardDeltaBatch>();
    batch->from = node_->id();
    batch->to = out.dest_leader;
    batch->migration_id = out.id;
    batch->seq = out.next_seq++;
    stats_.delta_batches_sent++;
    stats_.delta_writes_sent += intersecting.size();
    batch->writes = std::move(intersecting);
    node_->network()->Send(std::move(batch));
  }
}

void ShardMigrator::OnDeltaAck(const ShardDeltaAck& ack) {
  for (Outbound& out : outbound_) {
    if (out.id != ack.migration_id) continue;
    out.acked_seq = std::max(out.acked_seq, ack.seq);
    MaybeReportCutover(out);
    return;
  }
}

void ShardMigrator::OnBranchResolved() {
  for (Outbound& out : outbound_) MaybeReportCutover(out);
}

void ShardMigrator::MaybeReportCutover(Outbound& out) {
  if (!out.fenced || out.cutover_reported) return;
  if (out.acked_seq + 1 != out.next_seq) return;  // deltas in flight
  // Any live branch still touching the range (a prepared branch awaiting
  // its decision) blocks the cutover: its commit must forward first.
  for (const auto& [txn, info] : node_->branches_) {
    for (const RecordKey& key : info.keys) {
      if (out.range.Contains(key)) return;
    }
  }
  // Prepared branches installed by a failover (InstallPreparedBranch)
  // have no branches_ entry; check the engine's in-doubt set directly —
  // their write sets must still forward as deltas when decided.
  for (const Xid& xid : node_->engine().PreparedXids()) {
    for (const auto& [key, value] : node_->engine().WriteSetOf(xid)) {
      if (out.range.Contains(key)) return;
    }
  }
  out.cutover_reported = true;
  stats_.cutovers_reported++;
  auto ready = std::make_unique<ShardCutoverReady>();
  ready->from = node_->id();
  ready->to = out.balancer;
  ready->migration_id = out.id;
  ready->range = out.range;
  ready->range.owner = out.dest;
  ready->range.version = out.new_version;
  node_->network()->Send(std::move(ready));
}

// ---------------------------------------------------------------------------
// Destination role
// ---------------------------------------------------------------------------

void ShardMigrator::ApplyRecords(std::vector<ReplWrite> records,
                                 std::function<bool()> still_valid,
                                 std::function<void()> done) {
  // Bulk ingest takes real engine time (per-record cost); the records
  // become visible — and durable, and acked — only when it completes.
  // This is what makes an oversized migration slow, and why the balancer
  // splits a hot sub-range out of a big chunk instead of shipping all of
  // it: the ingest window scales with the number of records moved.
  const Micros cost =
      static_cast<Micros>(records.size()) *
      node_->config().migration_apply_cost;
  node_->loop()->Schedule(
      cost, [this, records = std::move(records),
             still_valid = std::move(still_valid),
             done = std::move(done)]() mutable {
        if (node_->crashed()) return;
        if (!still_valid()) return;  // cancelled during the ingest delay
        // The (leader's) local store always applies directly — the
        // replicated entry stream below only reaches followers (a leader
        // reflects its own appends through the engine, never through
        // ApplyEntry).
        for (const ReplWrite& w : records) {
          node_->engine().store().Apply(w.key, w.value);
        }
        replication::Replicator* repl = node_->replicator();
        if (repl != nullptr && repl->IsLeader()) {
          // Funnel through the replica group's log so followers apply the
          // same records via the LogShipper entry stream; the ack waits
          // for quorum durability. The synthetic xid never collides with
          // coordinator txn ids (middleware ordinals are small; 0xFFFF is
          // reserved).
          const Xid xid{
              MakeTxnId(0xFFFFu,
                        (static_cast<uint64_t>(node_->id()) << 24) |
                            ++synthetic_seq_),
              node_->logical_id()};
          repl->ReplicateCommit(xid, std::move(records), std::move(done));
          return;
        }
        done();
      });
}

void ShardMigrator::OnSnapshotChunk(const ShardSnapshotChunk& chunk) {
  // migration_id == 0 chunks are replication bootstrap snapshots and are
  // consumed by the Replicator before this handler runs.
  if (chunk.migration_id == 0) return;
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;  // balancer will retry
  const NodeId source = chunk.from;
  const uint64_t id = chunk.migration_id;
  Inbound& in = inbound_[id];
  if (in.applying || in.snapshot_applied) return;  // duplicate chunk
  in.range = chunk.range;
  in.applying = true;
  const size_t record_count = chunk.records.size();
  const auto still_inbound = [this, id]() {
    auto it = inbound_.find(id);
    return it != inbound_.end() && it->second.applying;
  };
  ApplyRecords(chunk.records, still_inbound, [this, source, id,
                                              record_count]() {
    auto it = inbound_.find(id);
    if (it == inbound_.end()) return;  // cancelled during replication
    // Counted only here: a cancel or crash during the ingest delay means
    // the records never reached the store.
    stats_.snapshot_records_applied += record_count;
    it->second.applying = false;
    it->second.snapshot_applied = true;
    auto ack = std::make_unique<ShardSnapshotAck>();
    ack->from = node_->id();
    ack->to = source;
    ack->migration_id = id;
    node_->network()->Send(std::move(ack));
    // Deltas that outran the snapshot (independent per-message link
    // delays) were buffered; they apply strictly after it.
    DrainDeltas(id, source);
  });
}

void ShardMigrator::OnDeltaBatch(const ShardDeltaBatch& batch) {
  replication::Replicator* repl = node_->replicator();
  if (repl != nullptr && !repl->IsLeader()) return;
  Inbound& in = inbound_[batch.migration_id];
  if (batch.seq <= in.applied_seq) return;  // duplicate
  in.pending[batch.seq] = batch.writes;
  DrainDeltas(batch.migration_id, batch.from);
}

void ShardMigrator::DrainDeltas(uint64_t migration_id, NodeId source) {
  // Strict order: nothing before the snapshot, then sequence order (a
  // delta applied under an older store state would be overwritten), one
  // ingest in flight at a time (application takes event-loop time).
  auto it = inbound_.find(migration_id);
  if (it == inbound_.end()) return;
  Inbound& in = it->second;
  if (!in.snapshot_applied || in.applying) return;
  while (!in.pending.empty() && in.pending.begin()->first <= in.applied_seq) {
    in.pending.erase(in.pending.begin());  // stale duplicate
  }
  if (in.pending.empty() || in.pending.begin()->first != in.applied_seq + 1) {
    return;
  }
  std::vector<ReplWrite> writes = std::move(in.pending.begin()->second);
  in.pending.erase(in.pending.begin());
  in.applying = true;
  const uint64_t seq = in.applied_seq + 1;
  const auto still_inbound = [this, migration_id]() {
    auto it = inbound_.find(migration_id);
    return it != inbound_.end() && it->second.applying;
  };
  ApplyRecords(std::move(writes), still_inbound,
               [this, source, migration_id, seq]() {
    auto jt = inbound_.find(migration_id);
    if (jt == inbound_.end()) return;  // cancelled during replication
    jt->second.applying = false;
    jt->second.applied_seq = seq;
    stats_.delta_batches_applied++;
    auto ack = std::make_unique<ShardDeltaAck>();
    ack->from = node_->id();
    ack->to = source;
    ack->migration_id = migration_id;
    ack->seq = seq;
    node_->network()->Send(std::move(ack));
    DrainDeltas(migration_id, source);
  });
}

// ---------------------------------------------------------------------------
// Map adoption / lifecycle
// ---------------------------------------------------------------------------

void ShardMigrator::OnMapUpdate(const ShardMapUpdate& update) {
  map_.Adopt(update.entries);
  // Migrations whose range the map now places at the destination are
  // complete: drop their state (redirects come from the map from here on).
  const NodeId self = node_->logical_id();
  outbound_.erase(
      std::remove_if(outbound_.begin(), outbound_.end(),
                     [this, self](const Outbound& out) {
                       const ShardRange* range = map_.RangeOf(
                           RecordKey{out.range.table, out.range.lo});
                       return range != nullptr && range->owner != self;
                     }),
      outbound_.end());
  // Destination side: once the map places a migration's range here, its
  // delta stream is over (the source only reported cutover after every
  // delta was acked) — the ordering buffer can go.
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    const ShardRange* range =
        map_.RangeOf(RecordKey{it->second.range.table, it->second.range.lo});
    const bool complete = it->second.snapshot_applied && range != nullptr &&
                          range->owner == self &&
                          range->version >= it->second.range.version;
    it = complete ? inbound_.erase(it) : std::next(it);
  }
}

void ShardMigrator::OnCrash() {
  outbound_.clear();
  inbound_.clear();
}

}  // namespace sharding
}  // namespace geotp
