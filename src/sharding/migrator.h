// ShardMigrator: the data-source side of live shard migration.
//
// Each DataSourceNode owns one migrator. It plays two roles:
//
//  * Source (replica-group leader only): on a ShardMigrateRequest it cuts
//    a snapshot of the committed records in the moving range and sends it
//    to the destination leader. Writes committed after the cut are
//    forwarded as sequenced ShardDeltaBatch messages. Once the snapshot is
//    acked it FENCES the range: new batches touching it are refused
//    (retryable), in-flight active branches on it are aborted (the client
//    retries), and prepared branches drain — their commit write sets still
//    forward as deltas. When no live branch touches the range and every
//    delta is acked, the migrator reports ShardCutoverReady to the
//    balancer, which publishes the new placement.
//
//  * Destination: applies snapshot and delta records. On a replicated
//    destination they are funnelled through the replica group's log
//    (Replicator::ReplicateCommit with a synthetic migration xid), so
//    followers receive them through the existing LogShipper entry stream
//    and acks are quorum-durable.
//
// Every data source also keeps an adopted copy of the shard map
// (ShardMapUpdate). A batch whose keys the local map places elsewhere is
// bounced with a ShardRedirect ("WrongShardEpoch") carrying the patched
// range, so stale DMs converge without a central refresh.
#ifndef GEOTP_SHARDING_MIGRATOR_H_
#define GEOTP_SHARDING_MIGRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "protocol/messages.h"
#include "sharding/shard_map.h"
#include "sim/network.h"

namespace geotp {
namespace datasource {
class DataSourceNode;
}  // namespace datasource

namespace sharding {

struct ShardMigratorStats {
  uint64_t migrations_started = 0;    ///< source role
  uint64_t migrations_cancelled = 0;
  uint64_t cutovers_reported = 0;
  uint64_t snapshot_records_sent = 0;
  uint64_t delta_batches_sent = 0;
  uint64_t delta_writes_sent = 0;
  uint64_t fence_aborts = 0;  ///< active branches aborted at fence
  // (fenced rejections / redirects are counted in DataSourceStats, where
  // the refusal responses are actually sent.)
  uint64_t snapshot_records_applied = 0;  ///< destination role
  uint64_t delta_batches_applied = 0;
};

class ShardMigrator {
 public:
  explicit ShardMigrator(datasource::DataSourceNode* node) : node_(node) {}

  /// Consumes sharding traffic. Returns false for unrelated messages.
  bool HandleMessage(sim::MessageBase* msg);

  /// Routing verdict for an incoming execute batch.
  enum class RouteCheck {
    kServe,   ///< all keys live here
    kFenced,  ///< a key is mid-migration (fenced): refuse, client retries
    kMoved,   ///< a key moved away: bounce with a ShardRedirect
  };
  /// The local map is authoritative for what this node serves: any key it
  /// places elsewhere is bounced, whatever epoch the coordinator routed
  /// under (a per-request GLOBAL epoch cannot prove the coordinator knows
  /// THIS range's latest placement). A coordinator that is actually ahead
  /// re-routes to the same owner and converges once the in-flight map
  /// update lands here. `moved` receives the range to redirect to when
  /// the result is kMoved.
  RouteCheck CheckOps(const std::vector<protocol::ClientOp>& ops,
                      const ShardRange** moved) const;

  /// Follower-read guard: false if the map places any key elsewhere (the
  /// DM then falls back to the leader path, which redirects properly).
  bool OwnsKeys(const std::vector<RecordKey>& keys) const;

  /// Commit hook: forwards the writes intersecting any active outbound
  /// migration as deltas. Call with the write set captured just before the
  /// engine commit.
  void OnCommittedWrites(
      const std::vector<std::pair<RecordKey, int64_t>>& writes);
  /// True if OnCommittedWrites needs the write set at all (avoids building
  /// it on the common no-migration path).
  bool WantsCommittedWrites() const { return !outbound_.empty(); }

  /// Branch-resolution hook (commit/rollback processed): re-checks whether
  /// a fenced migration finished draining.
  void OnBranchResolved();

  /// Crash: all migration state is volatile (the balancer times the
  /// migration out and cancels it).
  void OnCrash();

  const ShardMap& map() const { return map_; }
  const ShardMigratorStats& stats() const { return stats_; }

 private:
  struct Outbound {
    uint64_t id = 0;
    ShardRange range;            ///< owner = this group (pre-cutover)
    NodeId dest = kInvalidNode;  ///< destination logical group
    NodeId dest_leader = kInvalidNode;
    uint64_t new_version = 0;
    bool snapshot_acked = false;
    bool fenced = false;
    bool cutover_reported = false;
    NodeId balancer = kInvalidNode;  ///< where ShardCutoverReady goes
    uint64_t next_seq = 1;           ///< next delta batch to send
    uint64_t acked_seq = 0;          ///< highest delta batch acked
  };
  struct Inbound {
    ShardRange range;  ///< for pruning once the map places it here
    /// Deltas must never apply before the snapshot: an independent link
    /// delay per message can deliver delta seq 1 first, and applying it
    /// early would let the older snapshot overwrite a committed write.
    bool snapshot_applied = false;
    /// An ingest (snapshot or delta) is mid-apply: record application now
    /// charges `migration_apply_cost` per record on the event loop, so
    /// later batches must queue behind the one in flight.
    bool applying = false;
    uint64_t applied_seq = 0;  ///< highest contiguously applied delta
    std::map<uint64_t, std::vector<protocol::ReplWrite>> pending;
  };

  void OnMigrateRequest(const protocol::ShardMigrateRequest& req);
  void OnMigrateCancel(const protocol::ShardMigrateCancel& req);
  void OnSnapshotChunk(const protocol::ShardSnapshotChunk& chunk);
  void OnSnapshotAck(const protocol::ShardSnapshotAck& ack);
  void OnDeltaBatch(const protocol::ShardDeltaBatch& batch);
  void OnDeltaAck(const protocol::ShardDeltaAck& ack);
  void OnMapUpdate(const protocol::ShardMapUpdate& update);

  /// Fences the range of `out`: aborts active branches touching it.
  void FenceRange(Outbound& out);
  /// Drain check: fenced + no live branch on the range + deltas acked ->
  /// report cutover readiness once.
  void MaybeReportCutover(Outbound& out);
  /// Applies records at the destination after charging the per-record
  /// ingest cost, through the replica group's log when replicated; runs
  /// `done` once durable. `still_valid` is re-checked when the ingest
  /// delay elapses, BEFORE anything touches the store: a migration
  /// cancelled mid-ingest must not apply its stale records (a later
  /// migration of the same range may have landed newer values by then).
  void ApplyRecords(std::vector<protocol::ReplWrite> records,
                    std::function<bool()> still_valid,
                    std::function<void()> done);
  /// Applies (and acks) the next buffered delta in sequence, one ingest at
  /// a time (record application takes event-loop time).
  void DrainDeltas(uint64_t migration_id, NodeId source);

  datasource::DataSourceNode* node_;
  ShardMap map_;  ///< adopted placement (empty until the first update)
  std::vector<Outbound> outbound_;
  std::map<uint64_t, Inbound> inbound_;  ///< by migration id
  uint64_t synthetic_seq_ = 0;  ///< synthetic txn ids for record applies
  ShardMigratorStats stats_;
};

}  // namespace sharding
}  // namespace geotp

#endif  // GEOTP_SHARDING_MIGRATOR_H_
