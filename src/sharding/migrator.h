// ShardMigrator: the data-source side of live shard migration.
//
// Each DataSourceNode owns one migrator. It plays two roles:
//
//  * Source (replica-group leader only): on a ShardMigrateRequest it
//    journals a MigrationBegin record through the replica group's log
//    (epoch-fenced like prepares), then STREAMS the committed records of
//    the moving range as bounded, sequenced ShardSnapshotChunks under
//    receiver-driven credit: the destination acks each applied chunk with
//    a flow-control grant, so a slow destination backpressures the source
//    (whose only stream memory is the unacked-chunk retransmit buffer,
//    capped by the credit window) instead of flooding the event loop.
//    Writes committed during the stream forward as sequenced
//    ShardDeltaBatch messages. Once the last chunk is acked it FENCES the
//    range: new batches touching it are refused (retryable), in-flight
//    active branches on it are aborted (the client retries), and prepared
//    branches drain — their commit write sets still forward as deltas.
//    When no live branch touches the range and every delta is acked, the
//    migrator journals a MigrationCutover record and, once that is
//    quorum-durable, reports ShardCutoverReady{logged} to the balancer,
//    which publishes the new placement.
//
//  * Destination: applies chunks in sequence order, one bounded ingest at
//    a time (`migration_apply_cost` per record per chunk), buffering at
//    most the advertised credit window of out-of-order chunks. Deltas
//    interleave behind the stream cursor: they apply immediately in delta
//    order, and a chunk arriving later skips any key a delta already
//    wrote (the delta is always newer than the chunk's committed cut).
//    On a replicated destination every ingest is funnelled through the
//    replica group's log (Replicator::ReplicateIngest with a synthetic
//    migration xid, tagged with the chunk/delta seq it covers), so
//    followers receive it through the existing LogShipper entry stream
//    and acks are quorum-durable — the journaled tag is the crash-
//    consistent ChunkAck record.
//
// Failover: all stream state is volatile, but the Begin/Cutover records
// survive in the group log. A promoted source leader inherits every
// unresolved migration (Replicator::FinishPromotion) and resolves it
// deterministically: Cutover logged -> re-fence the range and re-report
// readiness (the balancer's publish stays safe even if its leader-epoch
// view is stale — the record IS the fence); Begin only -> journal a
// MigrationEnd, notify the balancer with ShardMigrateAborted, and leave
// the range serving at the source. This closes the in-flight-
// LeaderAnnounce publish race the balancer's epoch compare could not.
//
// Every data source also keeps an adopted copy of the shard map
// (ShardMapUpdate). A batch whose keys the local map places elsewhere is
// bounced with a ShardRedirect ("WrongShardEpoch") carrying the patched
// range, so stale DMs converge without a central refresh.
#ifndef GEOTP_SHARDING_MIGRATOR_H_
#define GEOTP_SHARDING_MIGRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "protocol/messages.h"
#include "replication/replicator.h"
#include "sharding/shard_map.h"
#include "sim/network.h"

namespace geotp {
namespace datasource {
class DataSourceNode;
}  // namespace datasource

namespace sharding {

struct ShardMigratorStats {
  uint64_t migrations_started = 0;    ///< source role
  uint64_t migrations_cancelled = 0;
  uint64_t cutovers_reported = 0;
  uint64_t snapshot_records_sent = 0;
  uint64_t snapshot_chunks_sent = 0;   ///< excludes retransmits
  uint64_t chunk_retransmits = 0;
  /// High-water mark of the source's unacked-chunk buffer — the stream's
  /// only source-side memory. Flow control caps it at the receiver's
  /// credit window.
  uint64_t peak_unacked_chunks = 0;
  uint64_t streams_completed = 0;      ///< all chunks acked
  uint64_t delta_batches_sent = 0;
  uint64_t delta_writes_sent = 0;
  uint64_t fence_aborts = 0;  ///< active branches aborted at fence
  // (fenced rejections / redirects are counted in DataSourceStats, where
  // the refusal responses are actually sent.)
  uint64_t snapshot_records_applied = 0;  ///< destination role
  uint64_t snapshot_chunks_applied = 0;
  /// High-water mark of the destination's out-of-order chunk buffer;
  /// bounded by the window it advertises as credit.
  uint64_t peak_buffered_chunks = 0;
  uint64_t delta_batches_applied = 0;
  /// Chunk records skipped at apply time because a delta (always newer
  /// than the chunk's committed cut) already wrote the key.
  uint64_t chunk_records_superseded = 0;
  // Failover path (replicated migration state).
  uint64_t migration_resumes = 0;         ///< cutover re-reported from log
  uint64_t migration_aborts_from_log = 0; ///< Begin-only inherited, aborted
  // WAN-frugal streaming: compressed chunks + hash-decline resume.
  uint64_t seed_offers_sent = 0;  ///< re-point offers (source role)
  /// Chunks a re-pointed destination leader declined because its
  /// replicated ingest journal already held them — bytes the failover
  /// did NOT re-cross the WAN with.
  uint64_t chunks_declined = 0;
  uint64_t wan_bytes_raw = 0;   ///< packed chunk bytes before the codec
  uint64_t wan_bytes_wire = 0;  ///< chunk bytes actually sent (incl. resends)
};

class ShardMigrator {
 public:
  explicit ShardMigrator(datasource::DataSourceNode* node) : node_(node) {}

  /// Consumes sharding traffic. Returns false for unrelated messages.
  bool HandleMessage(sim::MessageBase* msg);

  /// Routing verdict for an incoming execute batch.
  enum class RouteCheck {
    kServe,   ///< all keys live here
    kFenced,  ///< a key is mid-migration (fenced): refuse, client retries
    kMoved,   ///< a key moved away: bounce with a ShardRedirect
  };
  /// The local map is authoritative for what this node serves: any key it
  /// places elsewhere is bounced, whatever epoch the coordinator routed
  /// under (a per-request GLOBAL epoch cannot prove the coordinator knows
  /// THIS range's latest placement). A coordinator that is actually ahead
  /// re-routes to the same owner and converges once the in-flight map
  /// update lands here. `moved` receives the range to redirect to when
  /// the result is kMoved.
  RouteCheck CheckOps(const std::vector<protocol::ClientOp>& ops,
                      const ShardRange** moved) const;

  /// Follower-read guard: false if the map places any key elsewhere (the
  /// DM then falls back to the leader path, which redirects properly).
  bool OwnsKeys(const std::vector<RecordKey>& keys) const;

  /// Commit hook: forwards the writes intersecting any active outbound
  /// migration as deltas. Call with the write set captured just before the
  /// engine commit.
  void OnCommittedWrites(
      const std::vector<std::pair<RecordKey, int64_t>>& writes);
  /// True if OnCommittedWrites needs the write set at all (avoids building
  /// it on the common no-migration path).
  bool WantsCommittedWrites() const { return !outbound_.empty(); }

  /// Branch-resolution hook (commit/rollback processed): re-checks whether
  /// a fenced migration finished draining.
  void OnBranchResolved();

  /// Promotion hook: unresolved migration records inherited through the
  /// group log. Re-fences + re-reports cut-over migrations, aborts the
  /// rest (see file comment).
  void OnInheritedMigrations(
      const std::vector<replication::Replicator::InheritedMigration>&
          migrations);

  /// Crash: stream and fence state are volatile. Migrations journaled in
  /// the replicated log are resumed or aborted by the promoted leader;
  /// unreplicated ones time out at the balancer and are cancelled.
  void OnCrash();

  /// Replicator apply hook (via DataSourceNode::OnIngestApplied): a
  /// migration-ingest entry landed on this replica. The per-migration
  /// journal built here is what a freshly promoted destination leader
  /// answers a ShardSeedOffer with — chunks whose hash it holds are
  /// declined instead of re-crossing the WAN.
  void NoteIngestApplied(uint64_t migration_id, uint64_t chunk_seq,
                         uint64_t delta_seq, uint64_t content_hash);

  const ShardMap& map() const { return map_; }
  const ShardMigratorStats& stats() const { return stats_; }
  /// Chunks currently unacked on any outbound stream (test/bench probe).
  uint64_t UnackedChunks() const;

 private:
  struct Outbound {
    uint64_t id = 0;
    ShardRange range;            ///< owner = this group (pre-cutover)
    NodeId dest = kInvalidNode;  ///< destination logical group
    NodeId dest_leader = kInvalidNode;
    uint64_t new_version = 0;
    NodeId balancer = kInvalidNode;  ///< where ShardCutoverReady goes
    Micros timeout = 0;              ///< balancer cancellation window
    // ---- chunk stream (source -> dest) ----
    uint64_t next_chunk_seq = 1;   ///< next chunk to build
    uint64_t acked_chunk_seq = 0;  ///< highest contiguously acked chunk
    uint64_t credit = 1;           ///< receiver grant beyond acked_chunk_seq
    uint64_t last_chunk_seq = 0;   ///< seq of the final chunk (0 = unknown)
    uint64_t scan_cursor = 0;      ///< next key offset to scan
    bool scan_exhausted = false;
    bool stream_complete = false;  ///< every chunk acked
    /// Sent-but-unacked chunks, kept for retransmit. The stream's only
    /// bulk source-side memory; flow control bounds it to the credit
    /// window.
    std::map<uint64_t, std::vector<protocol::ReplWrite>> unacked;
    /// Codecs the destination advertised (ShardSnapshotAck /
    /// ShardSeedDecline); 0 until the first ack — chunks ship raw.
    uint32_t peer_codec_mask = 0;
    /// Per-chunk send record, kept PAST the ack (a few words per chunk):
    /// a destination-leader failover re-offer must replay the ORIGINAL
    /// hashes the old leader journaled, and resuming after the declined
    /// prefix needs the scan cursor that followed each chunk.
    struct SentDigest {
      uint64_t hash = 0;
      uint64_t next_cursor = 0;   ///< scan_cursor after this chunk
      bool exhausted = false;     ///< scan ended with this chunk
    };
    std::map<uint64_t, SentDigest> sent_digests;
    /// Sent-but-unacked delta batches: a re-pointed stream resends the
    /// suffix past the new destination leader's journaled delta position.
    std::map<uint64_t, std::vector<protocol::ReplWrite>> unacked_deltas;
    /// "migrate.chunk" system spans (first send -> ack), keyed like
    /// `unacked`; retransmits extend the original span.
    std::map<uint64_t, obs::SpanHandle> chunk_spans;
    Micros last_progress_at = 0;
    bool resend_armed = false;
    // ---- migration control records (replicated source) ----
    bool begin_logged = false;    ///< Begin record quorum-durable
    bool cutover_pending = false; ///< Cutover appended, awaiting quorum
    bool cutover_logged = false;  ///< Cutover record quorum-durable
    bool resumed = false;         ///< recreated from the log at promotion
    // ---- fence / cutover ----
    bool fenced = false;
    bool cutover_reported = false;
    uint64_t next_seq = 1;  ///< next delta batch to send
    uint64_t acked_seq = 0; ///< highest delta batch acked
  };
  struct Inbound {
    ShardRange range;  ///< for pruning once the map places it here
    /// An ingest (chunk or delta) is mid-apply: record application charges
    /// `migration_apply_cost` per record on the event loop, so later
    /// ingests queue behind the one in flight.
    bool applying = false;
    // ---- chunk stream ----
    uint64_t applied_chunk_seq = 0;  ///< highest contiguously applied chunk
    bool stream_complete = false;    ///< every chunk applied
    struct BufferedChunk {
      std::vector<protocol::ReplWrite> records;
      bool last = false;
      uint64_t content_hash = 0;  ///< journaled with the ingest entry
    };
    /// Out-of-order chunks, bounded by the credit window we advertise.
    std::map<uint64_t, BufferedChunk> pending_chunks;
    /// Keys a delta wrote before the stream completed: a chunk arriving
    /// later must not overwrite them with its older committed-cut value.
    std::unordered_set<RecordKey, RecordKeyHash> delta_written;
    // ---- deltas ----
    uint64_t applied_seq = 0;  ///< highest contiguously applied delta
    std::map<uint64_t, std::vector<protocol::ReplWrite>> pending;
  };

  void OnMigrateRequest(const protocol::ShardMigrateRequest& req);
  void OnMigrateCancel(const protocol::ShardMigrateCancel& req);
  void OnSnapshotChunk(const protocol::ShardSnapshotChunk& chunk);
  void OnSnapshotAck(const protocol::ShardSnapshotAck& ack);
  void OnDeltaBatch(const protocol::ShardDeltaBatch& batch);
  void OnDeltaAck(const protocol::ShardDeltaAck& ack);
  void OnMapUpdate(const protocol::ShardMapUpdate& update);
  /// Destination side of a re-pointed stream: declines the journaled
  /// prefix, adopts the resume position, and grants credit for the rest.
  void OnSeedOffer(const protocol::ShardSeedOffer& offer);
  /// Source side: rewinds the stream to the declined prefix's end and
  /// resumes pumping (fresh scans) toward the new destination leader.
  void OnSeedDecline(const protocol::ShardSeedDecline& decline);
  /// Re-offers the sent-chunk digests to the (new) destination leader.
  void SendSeedOffer(Outbound& out);

  Outbound* FindOutbound(uint64_t migration_id);
  /// Builds + sends chunks while the receiver's credit window allows.
  void PumpChunks(uint64_t migration_id);
  /// Sends one already-built chunk (fresh or retransmit): seals it into
  /// the negotiated WAN envelope, counts the bytes, and records the
  /// content hash in `sent_digests`.
  void SendChunk(Outbound& out, uint64_t seq,
                 const std::vector<protocol::ReplWrite>& records, bool last);
  /// Arms the per-migration retransmit check chain.
  void ArmResendTimer(uint64_t migration_id);
  /// Journals one migration control record if this node leads a replica
  /// group (no-op otherwise); `on_quorum` may be null.
  void JournalMigrationRecord(protocol::ReplEntryType type,
                              const Outbound& out,
                              std::function<void()> on_quorum);
  /// Journals the terminal MigrationEnd for `out` when the group log
  /// still tracks the migration as unresolved.
  void JournalEnd(const Outbound& out);

  /// Fences the range of `out`: aborts active branches touching it.
  void FenceRange(Outbound& out);
  /// Drain check: fenced + no live branch on the range + deltas acked ->
  /// journal the Cutover record (replicated) and report readiness once.
  void MaybeReportCutover(Outbound& out);
  void SendCutoverReady(Outbound& out, bool logged);

  /// Applies records at the destination after charging the per-record
  /// ingest cost, through the replica group's log when replicated (tagged
  /// with the stream position so the ack is journaled); runs `done` once
  /// durable. `still_valid` is re-checked when the ingest delay elapses,
  /// BEFORE anything touches the store: a migration cancelled mid-ingest
  /// must not apply its stale records (a later migration of the same
  /// range may have landed newer values by then).
  void ApplyRecords(std::vector<protocol::ReplWrite> records,
                    uint64_t migration_id, uint64_t chunk_seq,
                    uint64_t delta_seq, uint64_t content_hash,
                    std::function<bool()> still_valid,
                    std::function<void()> done);
  /// Applies the next buffered ingest (chunk in seq order first, else
  /// delta in seq order), one at a time.
  void DrainIngest(uint64_t migration_id, NodeId source);
  /// Acks the destination's current chunk position + credit grant.
  void SendChunkAck(uint64_t migration_id, NodeId source);

  datasource::DataSourceNode* node_;
  ShardMap map_;  ///< adopted placement (empty until the first update)
  std::vector<Outbound> outbound_;
  std::map<uint64_t, Inbound> inbound_;  ///< by migration id
  /// Destination-side tombstones: migrations cancelled or completed here.
  /// A straggler (or retransmitted) chunk arriving after the Inbound was
  /// erased must NOT recreate it — its stale records could overwrite a
  /// later migration of the same range. Migration ids are globally unique
  /// and few, so the set stays small.
  std::unordered_set<uint64_t> retired_inbound_;
  /// Per-migration record of quorum-durable ingests applied on THIS
  /// replica (fed by the replicator's apply path). Volatile — a crash
  /// clears it and a promoted leader simply declines nothing, falling
  /// back to a full resend. Pruned when the migration retires.
  struct IngestJournal {
    std::map<uint64_t, uint64_t> chunk_hashes;  ///< chunk seq -> hash
    uint64_t max_delta_seq = 0;
  };
  std::map<uint64_t, IngestJournal> ingest_journal_;  ///< by migration id
  uint64_t synthetic_seq_ = 0;  ///< synthetic txn ids for record applies
  ShardMigratorStats stats_;
};

}  // namespace sharding
}  // namespace geotp

#endif  // GEOTP_SHARDING_MIGRATOR_H_
