// WAN payload compression: a pluggable compressor seam with a
// self-contained LZ-style block codec as the default, plus the content
// hash the WAN envelopes carry.
//
// Every cross-region byte is the scarce resource in a geo-distributed
// deployment, so the two bulk WAN paths — LogShipper entry batches and
// migration ShardSnapshotChunks — pack their records into a byte string,
// compress it, and ship `{payload, codec, uncompressed_len, content_hash}`
// instead of the plain vectors. The hash is computed over the UNCOMPRESSED
// packed bytes, so a receiver verifies end-to-end integrity after
// decompression (a truncated or bit-flipped frame is dropped, never
// applied) and — for migration chunks — the same hash doubles as the
// chunk's identity in the incremental re-seed handshake (ShardSeedOffer /
// ShardSeedDecline): equal hash means the destination already holds the
// chunk byte-for-byte and declines the retransfer.
//
// Codecs are negotiated per connection with a bitmask piggybacked on acks
// (raw is always supported), so mixed-version actors interoperate: a
// sender ships raw frames until the peer advertises a codec. zstd slots
// in behind GEOTP_WITH_ZSTD (CMake option) without changing any call
// site; the repo builds offline with the block codec alone.
#ifndef GEOTP_COMMON_COMPRESS_H_
#define GEOTP_COMMON_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace geotp {
namespace common {

/// FNV-1a 64-bit content hash. Not cryptographic — it guards against
/// corruption and identifies chunk content for re-seed declines, both
/// within one trusted deployment.
uint64_t ContentHash64(const void* data, size_t len);
inline uint64_t ContentHash64(const std::string& bytes) {
  return ContentHash64(bytes.data(), bytes.size());
}

/// Wire codec identifiers; the numeric values travel in message envelopes
/// and must stay stable.
enum class WireCodec : uint8_t {
  kRaw = 0,    ///< payload is the packed bytes, uncompressed
  kBlock = 1,  ///< self-contained LZ block codec (always available)
  kZstd = 2,   ///< optional, behind GEOTP_WITH_ZSTD
};

const char* WireCodecName(WireCodec codec);

/// Capability bits for per-connection negotiation (ack piggyback).
constexpr uint32_t kCodecRawBit = 1u << 0;
constexpr uint32_t kCodecBlockBit = 1u << 1;
constexpr uint32_t kCodecZstdBit = 1u << 2;

/// Every codec this build can decode (raw | block, + zstd when compiled
/// in). This is what an actor advertises on its acks.
uint32_t SupportedCodecMask();

/// The codec a sender should use toward a peer advertising `peer_mask`,
/// honouring the local `wan_compression` knob. An empty mask (a peer that
/// predates negotiation) always resolves to raw.
WireCodec PickWireCodec(uint32_t peer_mask, bool wan_compression);

/// Compression seam (SNIPPETS.md snippet 2 idiom): implementations are
/// stateless per call, so one process-wide instance per codec suffices.
class ICompressor {
 public:
  virtual ~ICompressor() = default;
  virtual WireCodec codec() const = 0;
  /// Compresses `len` bytes at `data`. Always succeeds (worst case the
  /// output expands; callers fall back to raw when that loses).
  virtual std::string Compress(const uint8_t* data, size_t len) = 0;
};

class IDecompressor {
 public:
  virtual ~IDecompressor() = default;
  virtual WireCodec codec() const = 0;
  /// Decompresses into `out`. Returns false — with no crash and no
  /// out-of-bounds access — on any malformed input: truncated stream,
  /// offset outside the produced prefix, or output size != expected_len.
  virtual bool Decompress(const uint8_t* data, size_t len,
                          size_t expected_len, std::string* out) = 0;
};

/// Process-wide codec registry. Returns nullptr for kRaw (no transform)
/// and for codecs this build cannot handle.
ICompressor* CompressorFor(WireCodec codec);
IDecompressor* DecompressorFor(WireCodec codec);

/// Envelope helpers used by the WAN send/receive paths.
///
/// EncodePayload: compresses `raw` under `want` (falling back to raw when
/// the codec is unavailable or the compressed form is not smaller) and
/// returns the codec actually used; `wire` receives the bytes to ship.
WireCodec EncodePayload(WireCodec want, const std::string& raw,
                        std::string* wire);
/// DecodePayload: inverse of EncodePayload plus end-to-end verification.
/// Returns false if the codec is unknown, the stream is malformed, the
/// size disagrees with `expected_len`, or the FNV hash of the recovered
/// bytes differs from `expected_hash`.
bool DecodePayload(WireCodec codec, const std::string& wire,
                   size_t expected_len, uint64_t expected_hash,
                   std::string* raw);

}  // namespace common
}  // namespace geotp

#endif  // GEOTP_COMMON_COMPRESS_H_
