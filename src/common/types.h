// Core identifier and time types shared by every layer.
//
// All simulated time is expressed in integer microseconds of virtual time
// (Micros). Durations use the same unit. Helper constructors convert from
// milliseconds/seconds so call sites read like the paper ("73 ms RTT").
#ifndef GEOTP_COMMON_TYPES_H_
#define GEOTP_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace geotp {

/// Virtual time point / duration, in microseconds.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Converts milliseconds to Micros (accepts fractional milliseconds).
constexpr Micros MsToMicros(double ms) {
  return static_cast<Micros>(ms * static_cast<double>(kMicrosPerMilli));
}

/// Converts seconds to Micros.
constexpr Micros SecToMicros(double sec) {
  return static_cast<Micros>(sec * static_cast<double>(kMicrosPerSecond));
}

/// Converts Micros to fractional milliseconds (for reporting).
constexpr double MicrosToMs(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

/// Converts Micros to fractional seconds (for reporting).
constexpr double MicrosToSec(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

/// Identifies a simulated node (middleware, data source, or client host).
/// Values are dense indexes into the topology's node table.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// Global transaction identifier assigned by a middleware instance.
/// Encodes the originating middleware in the high bits so that ids from
/// multiple DMs (Fig. 15 deployment) never collide.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxn = 0;

/// Builds a TxnId from the middleware ordinal and a per-DM sequence number.
constexpr TxnId MakeTxnId(uint32_t middleware_ordinal, uint64_t seq) {
  return (static_cast<TxnId>(middleware_ordinal) << 48) | (seq & 0xFFFFFFFFFFFFULL);
}

/// XA branch identifier: global txn + participant data source.
struct Xid {
  TxnId txn_id = kInvalidTxn;
  NodeId data_source = kInvalidNode;

  bool operator==(const Xid& other) const {
    return txn_id == other.txn_id && data_source == other.data_source;
  }

  std::string ToString() const;
};

struct XidHash {
  size_t operator()(const Xid& xid) const {
    return std::hash<TxnId>()(xid.txn_id) * 31 +
           std::hash<NodeId>()(xid.data_source);
  }
};

/// A record key. Table-qualified: partitioning and lock manager operate on
/// (table, key) pairs packed into one 64-bit value for cheap hashing.
struct RecordKey {
  uint32_t table = 0;
  uint64_t key = 0;

  bool operator==(const RecordKey& other) const {
    return table == other.table && key == other.key;
  }
  bool operator<(const RecordKey& other) const {
    if (table != other.table) return table < other.table;
    return key < other.key;
  }

  std::string ToString() const;
};

struct RecordKeyHash {
  size_t operator()(const RecordKey& k) const {
    uint64_t h = (static_cast<uint64_t>(k.table) << 56) ^ k.key;
    // 64-bit mix (splitmix64 finalizer).
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace geotp

#endif  // GEOTP_COMMON_TYPES_H_
