#include "common/types.h"

namespace geotp {

std::string Xid::ToString() const {
  return "xid(" + std::to_string(txn_id) + "," + std::to_string(data_source) +
         ")";
}

std::string RecordKey::ToString() const {
  return "t" + std::to_string(table) + ":k" + std::to_string(key);
}

}  // namespace geotp
