// Status and Result<T>: exception-free error handling in the style of
// RocksDB/Arrow. Every fallible operation in the library returns one of
// these; callers must inspect them (the types are marked nodiscard).
#ifndef GEOTP_COMMON_STATUS_H_
#define GEOTP_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace geotp {

/// Error categories used across the library. Codes are stable and intended
/// for programmatic dispatch; messages are for humans.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTimedOut,        ///< lock-wait or network timeout
  kAborted,         ///< transaction aborted (deadlock victim, early abort, ...)
  kConflict,        ///< write-write/version conflict (ScalarDB-style CC)
  kUnavailable,     ///< node crashed or link down
  kCorruption,      ///< log / recovery inconsistency
  kNotSupported,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("Aborted", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying a StatusCode and an optional message.
/// Ok statuses never allocate.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Rebuilds a status from its (code, message) pair — the wire codec's
  /// decode path. An OK code ignores the message (OK never allocates).
  static Status FromCode(StatusCode code, std::string msg) {
    return code == StatusCode::kOk ? OK() : Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value or an error Status. Modeled after
/// arrow::Result; ValueOrDie() aborts the process on error (tests only).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT implicit
  Result(Status status) : data_(std::move(status)) {  // NOLINT implicit
    // An OK status carries no value; storing it in a Result is a bug.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagate a non-OK status to the caller.
#define GEOTP_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::geotp::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assign the value of a Result to `lhs`, or propagate its error status.
#define GEOTP_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto GEOTP_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!GEOTP_CONCAT_(_res_, __LINE__).ok())      \
    return GEOTP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(GEOTP_CONCAT_(_res_, __LINE__)).value()

#define GEOTP_CONCAT_(a, b) GEOTP_CONCAT_IMPL_(a, b)
#define GEOTP_CONCAT_IMPL_(a, b) a##b

}  // namespace geotp

#endif  // GEOTP_COMMON_STATUS_H_
