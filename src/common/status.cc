#include "common/status.h"

namespace geotp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace geotp
