#include "common/logging.h"

#include <atomic>

namespace geotp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<LogSink*> g_sink{nullptr};

std::mutex g_prefix_mu;
std::string g_prefix;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

class StderrSink : public LogSink {
 public:
  void Write(LogLevel level, const char* file, int line,
             const std::string& msg) override {
    const std::string formatted = FormatLogLine(level, file, line, msg);
    std::fprintf(stderr, "%s\n", formatted.c_str());
  }
};

StderrSink& DefaultSink() {
  static StderrSink sink;
  return sink;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void SetLogSink(LogSink* sink) { g_sink.store(sink); }

void SetLogPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(g_prefix_mu);
  g_prefix = prefix;
}

std::string GetLogPrefix() {
  std::lock_guard<std::mutex> lock(g_prefix_mu);
  return g_prefix;
}

std::string FormatLogLine(LogLevel level, const char* file, int line,
                          const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::ostringstream os;
  os << '[';
  const std::string prefix = GetLogPrefix();
  if (!prefix.empty()) os << prefix << ' ';
  os << LevelName(level) << ' ' << base << ':' << line << "] " << msg;
  return os.str();
}

void CaptureSink::Write(LogLevel level, const char* file, int line,
                        const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(FormatLogLine(level, file, line, msg));
  while (lines_.size() > max_lines_) lines_.pop_front();
}

std::vector<std::string> CaptureSink::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out(lines_.begin(), lines_.end());
  lines_.clear();
  return out;
}

std::string CaptureSink::Joined() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

size_t CaptureSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  LogSink* sink = g_sink.load();
  if (sink == nullptr) sink = &DefaultSink();
  sink->Write(level, file, line, msg);
}

}  // namespace internal
}  // namespace geotp
