#include "common/logging.h"

#include <atomic>

namespace geotp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace geotp
