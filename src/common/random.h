// Deterministic pseudo-random utilities for workload generation and jitter.
//
// Rng wraps a splitmix64/xoshiro-style generator with convenience samplers.
// ZipfianGenerator implements the YCSB scrambled-zipfian distribution used
// to control contention via the skew factor theta (paper §VII-A2).
#ifndef GEOTP_COMMON_RANDOM_H_
#define GEOTP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace geotp {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable, copyable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextU64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Normal sample with the given mean/stddev (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Exponential sample with the given mean.
  double NextExponential(double mean);

  /// Forks an independent stream (useful for per-terminal generators).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples an integer key in [lo, hi) with probability density proportional
/// to (k + 1)^-theta — i.e. a zipfian anchored at key 0 of the GLOBAL key
/// space, restricted to the sub-range. Used to sample a range-partitioned
/// table's global zipf conditioned on one partition: the head partition
/// gets the hot keys, remote partitions are nearly uniform (this is the
/// "hot records are intra-region" access pattern the paper's scheduling
/// targets, §I). Continuous-approximation inverse-CDF sampling, O(1).
uint64_t BoundedZipfSample(uint64_t lo, uint64_t hi, double theta, Rng& rng);

/// Per-thread generator for code that runs on loopback-runtime threads
/// (actor executors, flusher threads) and has no actor-owned Rng to draw
/// from. Each thread gets an independent stream the first time it asks:
/// deterministic per thread-creation order within a process, but NOT
/// reproducible across runs — real-thread scheduling already is not.
/// Simulated (single-threaded, seeded) code paths must keep using their
/// explicit Rng members; this exists so nothing multi-threaded is ever
/// tempted to share one of those (a TSan data race).
Rng& ThreadLocalRng();

/// Zipfian distribution over [0, n), YCSB-style, with optional scrambling so
/// hot keys are spread across the key space rather than clustered at 0.
///
/// theta is the skew factor: 0 = uniform-ish, 0.99 = classic YCSB, the paper
/// uses 0.3 / 0.9 / 1.5 for low / medium / high contention.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, bool scramble = true);

  /// Samples a key in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  bool scramble_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace geotp

#endif  // GEOTP_COMMON_RANDOM_H_
