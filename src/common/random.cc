#include "common/random.h"

#include <atomic>

#include <cmath>

namespace geotp {

Rng& ThreadLocalRng() {
  // Distinct seeds per thread: a process-wide counter stirred through the
  // generator's splitmix64 seeding. No locks after first use per thread.
  static std::atomic<uint64_t> next_stream{0x51AB5EEDULL};
  thread_local Rng rng(next_stream.fetch_add(0x9E3779B97F4A7C15ULL));
  return rng;
}

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Stateless 64-bit hash used for zipfian scrambling.
uint64_t FnvHash64(uint64_t v) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextU64(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mean + stddev * z0;
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t BoundedZipfSample(uint64_t lo, uint64_t hi, double theta, Rng& rng) {
  if (hi <= lo + 1) return lo;
  // Integrate the density x^-theta over [a, b] = [lo + 1, hi + 1) and
  // invert the CDF at a uniform sample.
  const double a = static_cast<double>(lo + 1);
  const double b = static_cast<double>(hi + 1);
  const double u = rng.NextDouble();
  double x;
  if (theta < 1e-9) {
    x = a + u * (b - a);
  } else if (std::abs(theta - 1.0) < 1e-9) {
    x = a * std::pow(b / a, u);
  } else {
    const double one_minus = 1.0 - theta;
    const double fa = std::pow(a, one_minus);
    const double fb = std::pow(b, one_minus);
    x = std::pow(fa + u * (fb - fa), 1.0 / one_minus);
  }
  auto key = static_cast<uint64_t>(x) - 1;  // undo the +1 shift
  if (key < lo) key = lo;
  if (key >= hi) key = hi - 1;
  return key;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble) {
  if (n_ == 0) n_ = 1;
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact for small n; for large n use the standard Euler-Maclaurin style
  // approximation so constructing a generator over millions of keys is O(1).
  constexpr uint64_t kExactLimit = 10000;
  double sum = 0.0;
  const uint64_t exact_n = n < kExactLimit ? n : kExactLimit;
  for (uint64_t i = 1; i <= exact_n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > kExactLimit) {
    if (theta == 1.0) {
      sum += std::log(static_cast<double>(n) / kExactLimit);
    } else {
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(kExactLimit), 1.0 - theta)) /
             (1.0 - theta);
    }
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  if (theta_ <= 1e-9) {
    uint64_t v = rng.NextU64(n_);
    return scramble_ ? FnvHash64(v) % n_ : v;
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  uint64_t v;
  if (uz < 1.0) {
    v = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    v = 1;
  } else {
    v = static_cast<uint64_t>(static_cast<double>(n_) *
                              std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (v >= n_) v = n_ - 1;
  }
  return scramble_ ? FnvHash64(v) % n_ : v;
}

}  // namespace geotp
