// Minimal leveled logging. Disabled (kWarn) by default so simulations stay
// quiet; tests and examples can raise the level for debugging.
//
// Output goes through a pluggable LogSink: the default sink formats to
// stderr; tests install a CaptureSink to keep a bounded window of recent
// lines (the chaos harness attaches that window to a failing seed's
// artifact); loopback child processes set a per-actor prefix so their
// interleaved stderr stays attributable.
#ifndef GEOTP_COMMON_LOGGING_H_
#define GEOTP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace geotp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide log threshold. Messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives every emitted log record. Implementations must be
/// thread-safe: loopback executor threads log concurrently.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const char* file, int line,
                     const std::string& msg) = 0;
};

/// Installs `sink` process-wide; nullptr restores the stderr default.
/// The sink must outlive every log call (install for process lifetime,
/// or restore the default before destroying it).
void SetLogSink(LogSink* sink);

/// Per-process prefix (e.g. "node2" in a loopback child) prepended to
/// every formatted line. Empty clears it.
void SetLogPrefix(const std::string& prefix);
std::string GetLogPrefix();

/// Formats a record the way the default sink prints it:
/// "[<prefix> LEVEL file:line] msg".
std::string FormatLogLine(LogLevel level, const char* file, int line,
                          const std::string& msg);

/// Sink keeping the last `max_lines` formatted lines in memory — the "log
/// window" a failing chaos seed attaches to its artifact.
class CaptureSink : public LogSink {
 public:
  explicit CaptureSink(size_t max_lines = 1024) : max_lines_(max_lines) {}

  void Write(LogLevel level, const char* file, int line,
             const std::string& msg) override;

  /// Returns and clears the window.
  std::vector<std::string> Drain();
  /// The window joined with newlines (does not clear).
  std::string Joined() const;
  size_t size() const;

 private:
  const size_t max_lines_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
};

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

#define GEOTP_LOG(level, ...)                                             \
  do {                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::geotp::GetLogLevel())) { \
      std::ostringstream _oss;                                            \
      _oss << __VA_ARGS__;                                                \
      ::geotp::internal::LogMessage(level, __FILE__, __LINE__, _oss.str()); \
    }                                                                     \
  } while (0)

#define GEOTP_TRACE(...) GEOTP_LOG(::geotp::LogLevel::kTrace, __VA_ARGS__)
#define GEOTP_DEBUG(...) GEOTP_LOG(::geotp::LogLevel::kDebug, __VA_ARGS__)
#define GEOTP_INFO(...) GEOTP_LOG(::geotp::LogLevel::kInfo, __VA_ARGS__)
#define GEOTP_WARN(...) GEOTP_LOG(::geotp::LogLevel::kWarn, __VA_ARGS__)
#define GEOTP_ERROR(...) GEOTP_LOG(::geotp::LogLevel::kError, __VA_ARGS__)

/// Fatal invariant check: prints and aborts. Used for programmer errors
/// (simulation invariants), never for recoverable runtime conditions.
#define GEOTP_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream _oss;                                        \
      _oss << "CHECK failed: " #cond " " << __VA_ARGS__;              \
      ::geotp::internal::LogMessage(::geotp::LogLevel::kError,        \
                                    __FILE__, __LINE__, _oss.str());  \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

}  // namespace geotp

#endif  // GEOTP_COMMON_LOGGING_H_
