// Minimal leveled logging. Disabled (kWarn) by default so simulations stay
// quiet; tests and examples can raise the level for debugging.
#ifndef GEOTP_COMMON_LOGGING_H_
#define GEOTP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace geotp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide log threshold. Messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

#define GEOTP_LOG(level, ...)                                             \
  do {                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::geotp::GetLogLevel())) { \
      std::ostringstream _oss;                                            \
      _oss << __VA_ARGS__;                                                \
      ::geotp::internal::LogMessage(level, __FILE__, __LINE__, _oss.str()); \
    }                                                                     \
  } while (0)

#define GEOTP_TRACE(...) GEOTP_LOG(::geotp::LogLevel::kTrace, __VA_ARGS__)
#define GEOTP_DEBUG(...) GEOTP_LOG(::geotp::LogLevel::kDebug, __VA_ARGS__)
#define GEOTP_INFO(...) GEOTP_LOG(::geotp::LogLevel::kInfo, __VA_ARGS__)
#define GEOTP_WARN(...) GEOTP_LOG(::geotp::LogLevel::kWarn, __VA_ARGS__)
#define GEOTP_ERROR(...) GEOTP_LOG(::geotp::LogLevel::kError, __VA_ARGS__)

/// Fatal invariant check: prints and aborts. Used for programmer errors
/// (simulation invariants), never for recoverable runtime conditions.
#define GEOTP_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream _oss;                                        \
      _oss << "CHECK failed: " #cond " " << __VA_ARGS__;              \
      ::geotp::internal::LogMessage(::geotp::LogLevel::kError,        \
                                    __FILE__, __LINE__, _oss.str());  \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

}  // namespace geotp

#endif  // GEOTP_COMMON_LOGGING_H_
