#include "common/compress.h"

#include <cstring>

#ifdef GEOTP_WITH_ZSTD
#include <zstd.h>
#endif

namespace geotp {
namespace common {
namespace {

// Block codec wire format (LZ4-flavoured token stream, self-contained so
// the repo builds offline):
//
//   sequence := token(1B) [lit-ext]* literals [offset(2B LE) [match-ext]*]
//   token    := literal_len(high nibble) | (match_len - 4)(low nibble)
//
// A nibble of 15 is extended by 255-run bytes. Matches copy `match_len`
// bytes from `offset` (1..65535) back in the produced output; the final
// sequence is literals only (the stream simply ends after them). The
// decoder is fully bounds-checked: it never reads past the input, never
// copies from before the produced output, and the result must come out to
// exactly the advertised uncompressed length.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

/// Decompression sanity bound: no WAN payload in this system approaches
/// this, and it stops a forged `uncompressed_len` from turning a tiny
/// frame into a giant allocation.
constexpr size_t kMaxPayload = size_t{1} << 28;

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash32(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutExtLength(std::string* out, size_t extra) {
  while (extra >= 255) {
    out->push_back(static_cast<char>(255));
    extra -= 255;
  }
  out->push_back(static_cast<char>(extra));
}

class BlockCompressor : public ICompressor {
 public:
  WireCodec codec() const override { return WireCodec::kBlock; }

  std::string Compress(const uint8_t* data, size_t len) override {
    std::string out;
    if (len == 0) return out;
    out.reserve(len / 2 + 16);
    uint32_t table[1u << kHashBits];  // position + 1; 0 = empty
    std::memset(table, 0, sizeof(table));

    const auto emit = [&](size_t lit_from, size_t lit_n, size_t match_len,
                          size_t offset) {
      const size_t lit_token = lit_n < 15 ? lit_n : 15;
      size_t match_token = 0;
      if (match_len != 0) {
        const size_t m = match_len - kMinMatch;
        match_token = m < 15 ? m : 15;
      }
      out.push_back(static_cast<char>((lit_token << 4) | match_token));
      if (lit_token == 15) PutExtLength(&out, lit_n - 15);
      out.append(reinterpret_cast<const char*>(data) + lit_from, lit_n);
      if (match_len == 0) return;  // final, literal-only sequence
      out.push_back(static_cast<char>(offset & 0xFF));
      out.push_back(static_cast<char>((offset >> 8) & 0xFF));
      if (match_token == 15) PutExtLength(&out, match_len - kMinMatch - 15);
    };

    size_t anchor = 0;
    size_t ip = 0;
    while (ip + kMinMatch <= len) {
      const uint32_t h = Hash32(Read32(data + ip));
      const uint32_t cand_plus1 = table[h];
      table[h] = static_cast<uint32_t>(ip + 1);
      if (cand_plus1 != 0) {
        const size_t cand = cand_plus1 - 1;
        const size_t offset = ip - cand;
        if (offset >= 1 && offset <= kMaxOffset &&
            Read32(data + cand) == Read32(data + ip)) {
          size_t n = kMinMatch;
          while (ip + n < len && data[cand + n] == data[ip + n]) ++n;
          emit(anchor, ip - anchor, n, offset);
          ip += n;
          anchor = ip;
          continue;
        }
      }
      ++ip;
    }
    // No empty final token when the input ends exactly at a match: every
    // sequence then produces output, so any truncation of the stream is
    // detectable by the decoder's exact-length check.
    if (anchor < len) emit(anchor, len - anchor, 0, 0);
    return out;
  }
};

class BlockDecompressor : public IDecompressor {
 public:
  WireCodec codec() const override { return WireCodec::kBlock; }

  bool Decompress(const uint8_t* data, size_t len, size_t expected_len,
                  std::string* out) override {
    out->clear();
    if (expected_len > kMaxPayload) return false;
    out->reserve(expected_len < (size_t{1} << 20) ? expected_len
                                                  : size_t{1} << 20);
    size_t ip = 0;
    const auto read_ext = [&](size_t* value) -> bool {
      uint8_t b;
      do {
        if (ip >= len) return false;
        b = data[ip++];
        *value += b;
        if (*value > expected_len) return false;  // runaway length
      } while (b == 255);
      return true;
    };
    while (ip < len) {
      const uint8_t token = data[ip++];
      size_t lit = token >> 4;
      if (lit == 15 && !read_ext(&lit)) return false;
      if (lit > len - ip) return false;
      if (lit > expected_len - out->size()) return false;
      out->append(reinterpret_cast<const char*>(data) + ip, lit);
      ip += lit;
      if (ip == len) {
        // Stream ends after literals: the final sequence. A non-zero
        // match nibble here is a dangling half-sequence — malformed.
        if ((token & 0x0F) != 0) return false;
        break;
      }
      if (len - ip < 2) return false;
      const size_t offset =
          static_cast<size_t>(data[ip]) |
          (static_cast<size_t>(data[ip + 1]) << 8);
      ip += 2;
      if (offset == 0 || offset > out->size()) return false;
      size_t match = token & 0x0F;
      if (match == 15 && !read_ext(&match)) return false;
      match += kMinMatch;
      if (match > expected_len - out->size()) return false;
      // Byte-by-byte: offsets shorter than the match repeat the produced
      // tail (RLE-style), so a bulk memcpy would read bytes not written
      // yet.
      const size_t src = out->size() - offset;
      for (size_t i = 0; i < match; ++i) out->push_back((*out)[src + i]);
    }
    return ip == len && out->size() == expected_len;
  }
};

#ifdef GEOTP_WITH_ZSTD
class ZstdCompressor : public ICompressor {
 public:
  WireCodec codec() const override { return WireCodec::kZstd; }
  std::string Compress(const uint8_t* data, size_t len) override {
    std::string out;
    out.resize(ZSTD_compressBound(len));
    const size_t n =
        ZSTD_compress(&out[0], out.size(), data, len, /*level=*/3);
    if (ZSTD_isError(n)) return std::string(reinterpret_cast<const char*>(data), len);
    out.resize(n);
    return out;
  }
};

class ZstdDecompressor : public IDecompressor {
 public:
  WireCodec codec() const override { return WireCodec::kZstd; }
  bool Decompress(const uint8_t* data, size_t len, size_t expected_len,
                  std::string* out) override {
    if (expected_len > kMaxPayload) return false;
    out->resize(expected_len);
    const size_t n =
        ZSTD_decompress(&(*out)[0], expected_len, data, len);
    return !ZSTD_isError(n) && n == expected_len;
  }
};
#endif  // GEOTP_WITH_ZSTD

}  // namespace

uint64_t ContentHash64(const void* data, size_t len) {
  // FNV-1a 64.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

const char* WireCodecName(WireCodec codec) {
  switch (codec) {
    case WireCodec::kRaw:
      return "raw";
    case WireCodec::kBlock:
      return "block";
    case WireCodec::kZstd:
      return "zstd";
  }
  return "?";
}

uint32_t SupportedCodecMask() {
  uint32_t mask = kCodecRawBit | kCodecBlockBit;
#ifdef GEOTP_WITH_ZSTD
  mask |= kCodecZstdBit;
#endif
  return mask;
}

WireCodec PickWireCodec(uint32_t peer_mask, bool wan_compression) {
  if (!wan_compression) return WireCodec::kRaw;
#ifdef GEOTP_WITH_ZSTD
  if ((peer_mask & kCodecZstdBit) != 0) return WireCodec::kZstd;
#endif
  if ((peer_mask & kCodecBlockBit) != 0) return WireCodec::kBlock;
  return WireCodec::kRaw;
}

ICompressor* CompressorFor(WireCodec codec) {
  switch (codec) {
    case WireCodec::kBlock: {
      static BlockCompressor block;
      return &block;
    }
#ifdef GEOTP_WITH_ZSTD
    case WireCodec::kZstd: {
      static ZstdCompressor zstd;
      return &zstd;
    }
#endif
    default:
      return nullptr;
  }
}

IDecompressor* DecompressorFor(WireCodec codec) {
  switch (codec) {
    case WireCodec::kBlock: {
      static BlockDecompressor block;
      return &block;
    }
#ifdef GEOTP_WITH_ZSTD
    case WireCodec::kZstd: {
      static ZstdDecompressor zstd;
      return &zstd;
    }
#endif
    default:
      return nullptr;
  }
}

WireCodec EncodePayload(WireCodec want, const std::string& raw,
                        std::string* wire) {
  ICompressor* compressor = CompressorFor(want);
  if (compressor != nullptr) {
    std::string compressed = compressor->Compress(
        reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
    if (compressed.size() < raw.size()) {
      *wire = std::move(compressed);
      return want;
    }
  }
  *wire = raw;  // incompressible (or codec unavailable): ship raw
  return WireCodec::kRaw;
}

bool DecodePayload(WireCodec codec, const std::string& wire,
                   size_t expected_len, uint64_t expected_hash,
                   std::string* raw) {
  if (expected_len > kMaxPayload) return false;
  if (codec == WireCodec::kRaw) {
    if (wire.size() != expected_len) return false;
    *raw = wire;
  } else {
    IDecompressor* decompressor = DecompressorFor(codec);
    if (decompressor == nullptr) return false;
    if (!decompressor->Decompress(
            reinterpret_cast<const uint8_t*>(wire.data()), wire.size(),
            expected_len, raw)) {
      return false;
    }
  }
  return ContentHash64(*raw) == expected_hash;
}

}  // namespace common
}  // namespace geotp
