// Pluggable runtime seams: the three capabilities every actor in the
// protocol stack consumes, abstracted from how they are provided.
//
//   * ITransport     — send/receive of runtime::MessageBase between nodes.
//   * IClock/ITimer  — "what time is it" and "run this later" (+ cancel).
//   * IStableStorage — durable flush of WAL/decision-log bytes, with an
//                      fsync completion callback.
//
// Two families implement them:
//
//   * The discrete-event simulator: sim::EventLoop IS-A ITimer and
//     sim::Network IS-A ITransport (virtual time, sampled link latency,
//     deterministic single-threaded execution). SimStableStorage, defined
//     here, models a log device by charging the flush cost on the timer.
//   * The loopback runtime (runtime/loopback.h): per-actor OS threads,
//     TCP-loopback sockets carrying codec-framed bytes, monotonic clocks,
//     and file-backed WAL devices doing real fsyncs.
//
// The same middleware / data-source / replication / sharding state
// machines run unmodified on either family; only the driver that
// assembles a deployment picks the backend.
#ifndef GEOTP_RUNTIME_RUNTIME_H_
#define GEOTP_RUNTIME_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/types.h"
#include "runtime/message.h"

namespace geotp {
namespace runtime {

/// Identifies a scheduled timer so it can be cancelled (e.g. a lock-wait
/// timeout that is no longer needed once the lock is granted).
using TimerId = uint64_t;
constexpr TimerId kInvalidTimer = 0;

/// Time source. Virtual microseconds in the simulator; monotonic
/// microseconds since runtime start in the loopback runtime. Actors only
/// ever compare and subtract these values, so the two are interchangeable.
class IClock {
 public:
  virtual ~IClock() = default;

  /// Current time in microseconds.
  virtual Micros Now() const = 0;
};

/// Deferred execution. In the simulator this is the shared event loop; in
/// the loopback runtime each actor gets its own executor whose callbacks
/// run on that actor's thread — so actor state needs no locking in either
/// backend.
class ITimer : public IClock {
 public:
  /// Schedules `fn` to run `delay` microseconds from now (>= 0).
  virtual TimerId Schedule(Micros delay, std::function<void()> fn) = 0;

  /// Schedules `fn` at an absolute time (clamped to >= Now()).
  virtual TimerId ScheduleAt(Micros when, std::function<void()> fn) = 0;

  /// Cancels a pending timer. Returns true if the timer existed and had
  /// not fired yet. Cancelling an already-fired or unknown id is a no-op.
  virtual bool Cancel(TimerId id) = 0;
};

/// Message passing between nodes. Delivery is asynchronous and runs the
/// destination's registered handler on the destination's execution
/// context (the shared loop in sim; the destination actor's thread — or a
/// remote process — in loopback).
class ITransport {
 public:
  using Handler = std::function<void(std::unique_ptr<MessageBase>)>;

  virtual ~ITransport() = default;

  /// Registers the message handler for a node. Must be called before any
  /// message addressed to that node is delivered.
  virtual void RegisterNode(NodeId node, Handler handler) = 0;

  /// Sends a message; `msg->from` / `msg->to` must be filled in by the
  /// caller. Delivery order between one sender/receiver pair is FIFO in
  /// the loopback runtime and latency-sampled (possibly reordered) in sim.
  virtual void Send(std::unique_ptr<MessageBase> msg) = 0;

  /// Fault injection: messages to/from a partitioned node are dropped
  /// until Restore(). The loopback transport implements this locally (for
  /// the contract tests); sim::Network uses it for every crash/chaos test.
  virtual void Partition(NodeId node) { (void)node; }
  virtual void Restore(NodeId node) { (void)node; }
  virtual bool IsPartitioned(NodeId node) const {
    (void)node;
    return false;
  }
};

/// A durable append-only log device (WAL, decision log). Append buffers
/// are the owner's business; the seam is the flush: `done` runs on the
/// owning actor's execution context strictly after the batch is on stable
/// media. The device is serial — callers (GroupCommitter) never issue a
/// second Flush before the first completed.
class IStableStorage {
 public:
  virtual ~IStableStorage() = default;

  /// Durably persists `batch` (opaque bytes; may be empty for a bare
  /// durability barrier). `cost_hint` is the simulated device time for
  /// this flush; physical devices ignore it and take however long the
  /// disk takes.
  virtual void Flush(std::string batch, Micros cost_hint,
                     std::function<void()> done) = 0;

  /// Physical flushes completed / bytes made durable since construction.
  virtual uint64_t fsyncs() const = 0;
  virtual uint64_t bytes_flushed() const = 0;
};

/// Simulated log device: a flush takes exactly `cost_hint` of virtual
/// time on the owning actor's timer. This is the cost model every
/// pre-runtime bench number was produced under, now behind the seam.
class SimStableStorage : public IStableStorage {
 public:
  explicit SimStableStorage(ITimer* timer) : timer_(timer) {}

  void Flush(std::string batch, Micros cost_hint,
             std::function<void()> done) override {
    bytes_ += batch.size();
    timer_->Schedule(cost_hint, [this, done = std::move(done)]() {
      ++fsyncs_;
      done();
    });
  }

  uint64_t fsyncs() const override { return fsyncs_; }
  uint64_t bytes_flushed() const override { return bytes_; }

 private:
  ITimer* timer_;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_ = 0;
};

/// Opens named durable devices for actors (one WAL per data source, one
/// decision log per middleware).
class IStorageFactory {
 public:
  virtual ~IStorageFactory() = default;
  virtual std::unique_ptr<IStableStorage> OpenStorage(
      NodeId node, const std::string& name) = 0;
};

/// Everything one actor needs from its runtime. Handed out by a Runtime;
/// the pointers stay owned by the runtime and outlive the actor.
struct ActorEnv {
  NodeId node = kInvalidNode;
  ITimer* timer = nullptr;
  ITransport* transport = nullptr;
  IStorageFactory* storage = nullptr;
};

/// A runtime backend: transports, per-actor timers, and storage devices
/// under one roof. See runtime/sim_runtime.h and runtime/loopback.h.
class Runtime : public IStorageFactory {
 public:
  ~Runtime() override = default;

  virtual ITransport* transport() = 0;

  /// Execution context for `node`'s callbacks. The simulator returns the
  /// one shared event loop; the loopback runtime creates (once) a
  /// dedicated thread per node.
  virtual ITimer* TimerFor(NodeId node) = 0;

  ActorEnv EnvFor(NodeId node) {
    return ActorEnv{node, TimerFor(node), transport(), this};
  }
};

}  // namespace runtime
}  // namespace geotp

#endif  // GEOTP_RUNTIME_RUNTIME_H_
