// Wire codec for the loopback runtime: every concrete MessageType can be
// serialized to a flat byte string and rebuilt on the far side of a TCP
// socket.
//
// Format: little-endian fixed-width integers, length-prefixed strings and
// vectors. The first two bytes are the MessageType tag, then `from`/`to`,
// then the type's fields in declaration order. The format is a process-
// boundary transport detail, not a storage format — there is no version
// negotiation; both ends of a loopback deployment run the same binary.
//
// The simulator never touches this codec (messages cross sim::Network as
// live C++ objects); the contract tests round-trip every type through it
// so a message added without codec support fails CI instead of failing at
// runtime in the loopback smoke.
#ifndef GEOTP_RUNTIME_CODEC_H_
#define GEOTP_RUNTIME_CODEC_H_

#include <memory>
#include <string>

#include "runtime/message.h"

namespace geotp {
namespace runtime {

/// Serializes `msg` (tag + from/to + fields). Aborts on a message type the
/// codec does not know — every type in MessageType must be encodable.
std::string EncodeMessage(const MessageBase& msg);

/// Rebuilds a message from EncodeMessage output. Returns nullptr on a
/// malformed or truncated buffer (the loopback transport drops the frame
/// and logs; a bounds overrun never reads past the buffer).
std::unique_ptr<MessageBase> DecodeMessage(const std::string& bytes);

}  // namespace runtime
}  // namespace geotp

#endif  // GEOTP_RUNTIME_CODEC_H_
