// SimRuntime: the discrete-event simulator packaged as a runtime backend.
//
// A thin adapter: sim::EventLoop already IS-A runtime::ITimer and
// sim::Network already IS-A runtime::ITransport, so every actor's timer is
// the one shared loop and storage devices are SimStableStorage cost
// models. Behavior is bit-identical to the pre-runtime wiring — tier-1
// tests and committed bench numbers do not move.
#ifndef GEOTP_RUNTIME_SIM_RUNTIME_H_
#define GEOTP_RUNTIME_SIM_RUNTIME_H_

#include <memory>
#include <string>

#include "runtime/runtime.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace runtime {

class SimRuntime : public Runtime {
 public:
  /// Does not take ownership; the loop/network outlive the runtime (they
  /// are typically stack-owned by the test fixture or experiment runner).
  SimRuntime(sim::EventLoop* loop, sim::Network* network)
      : loop_(loop), network_(network) {}

  ITransport* transport() override { return network_; }

  ITimer* TimerFor(NodeId node) override {
    (void)node;
    return loop_;
  }

  std::unique_ptr<IStableStorage> OpenStorage(
      NodeId node, const std::string& name) override {
    (void)node;
    (void)name;
    return std::make_unique<SimStableStorage>(loop_);
  }

 private:
  sim::EventLoop* loop_;
  sim::Network* network_;
};

}  // namespace runtime
}  // namespace geotp

#endif  // GEOTP_RUNTIME_SIM_RUNTIME_H_
