#include "runtime/codec.h"

#include <cstring>
#include <utility>
#include <vector>

#include "baselines/store_messages.h"
#include "common/logging.h"
#include "protocol/messages.h"

namespace geotp {
namespace runtime {
namespace {

// ---------------------------------------------------------------------------
// Primitive writer / bounds-checked reader
// ---------------------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& in) : in_(in) {}

  uint8_t U8() { uint8_t v = 0; Raw(&v, sizeof(v)); return v; }
  uint16_t U16() { uint16_t v = 0; Raw(&v, sizeof(v)); return v; }
  uint32_t U32() { uint32_t v = 0; Raw(&v, sizeof(v)); return v; }
  uint64_t U64() { uint64_t v = 0; Raw(&v, sizeof(v)); return v; }
  int64_t I64() { int64_t v = 0; Raw(&v, sizeof(v)); return v; }
  int32_t I32() { int32_t v = 0; Raw(&v, sizeof(v)); return v; }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok_ || in_.size() - pos_ < n) { ok_ = false; return std::string(); }
    std::string s = in_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  /// Guard for vector sizes: a corrupt length must not turn into a
  /// multi-gigabyte allocation before the per-element reads fail.
  uint32_t Count() {
    const uint32_t n = U32();
    if (!ok_ || in_.size() - pos_ < n) { ok_ = false; return 0; }
    return n;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == in_.size(); }

 private:
  void Raw(void* p, size_t n) {
    if (!ok_ || in_.size() - pos_ < n) { ok_ = false; return; }
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }
  const std::string& in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Shared compound fields
// ---------------------------------------------------------------------------

void PutStatus(Writer& w, const Status& s) {
  w.U8(static_cast<uint8_t>(s.code()));
  w.Str(s.message());
}
Status GetStatus(Reader& r) {
  const auto code = static_cast<StatusCode>(r.U8());
  return Status::FromCode(code, r.Str());
}

void PutXid(Writer& w, const Xid& x) {
  w.U64(x.txn_id);
  w.I32(x.data_source);
}
Xid GetXid(Reader& r) {
  Xid x;
  x.txn_id = r.U64();
  x.data_source = r.I32();
  return x;
}

void PutKey(Writer& w, const RecordKey& k) {
  w.U32(k.table);
  w.U64(k.key);
}
RecordKey GetKey(Reader& r) {
  RecordKey k;
  k.table = r.U32();
  k.key = r.U64();
  return k;
}

void PutRange(Writer& w, const sharding::ShardRange& s) {
  w.U32(s.table);
  w.U64(s.lo);
  w.U64(s.hi);
  w.I32(s.owner);
  w.U64(s.version);
}
sharding::ShardRange GetRange(Reader& r) {
  sharding::ShardRange s;
  s.table = r.U32();
  s.lo = r.U64();
  s.hi = r.U64();
  s.owner = r.I32();
  s.version = r.U64();
  return s;
}

void PutOp(Writer& w, const protocol::ClientOp& op) {
  PutKey(w, op.key);
  w.Bool(op.is_write);
  w.I64(op.value);
  w.Bool(op.is_delta);
}
protocol::ClientOp GetOp(Reader& r) {
  protocol::ClientOp op;
  op.key = GetKey(r);
  op.is_write = r.Bool();
  op.value = r.I64();
  op.is_delta = r.Bool();
  return op;
}

void PutWrite(Writer& w, const protocol::ReplWrite& rw) {
  PutKey(w, rw.key);
  w.I64(rw.value);
}
protocol::ReplWrite GetWrite(Reader& r) {
  protocol::ReplWrite rw;
  rw.key = GetKey(r);
  rw.value = r.I64();
  return rw;
}

void PutMigration(Writer& w, const protocol::MigrationRecord& m) {
  w.U64(m.migration_id);
  PutRange(w, m.range);
  w.I32(m.dest);
  w.I32(m.dest_leader);
  w.U64(m.new_version);
  w.I32(m.balancer);
  w.I64(m.timeout);
  w.U64(m.delta_next_seq);
}
protocol::MigrationRecord GetMigration(Reader& r) {
  protocol::MigrationRecord m;
  m.migration_id = r.U64();
  m.range = GetRange(r);
  m.dest = r.I32();
  m.dest_leader = r.I32();
  m.new_version = r.U64();
  m.balancer = r.I32();
  m.timeout = r.I64();
  m.delta_next_seq = r.U64();
  return m;
}

void PutEntry(Writer& w, const protocol::ReplEntry& e) {
  w.U64(e.index);
  w.U64(e.epoch);
  w.U8(static_cast<uint8_t>(e.type));
  PutXid(w, e.xid);
  w.I32(e.coordinator);
  w.U32(static_cast<uint32_t>(e.writes.size()));
  for (const auto& rw : e.writes) PutWrite(w, rw);
  w.I64(e.at);
  w.Bool(e.migration != nullptr);
  if (e.migration) PutMigration(w, *e.migration);
  w.U64(e.ingest_migration_id);
  w.U64(e.ingest_chunk_seq);
  w.U64(e.ingest_delta_seq);
  w.U64(e.ingest_content_hash);
}
protocol::ReplEntry GetEntry(Reader& r) {
  protocol::ReplEntry e;
  e.index = r.U64();
  e.epoch = r.U64();
  e.type = static_cast<protocol::ReplEntryType>(r.U8());
  e.xid = GetXid(r);
  e.coordinator = r.I32();
  const uint32_t n = r.Count();
  e.writes.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) e.writes.push_back(GetWrite(r));
  e.at = r.I64();
  if (r.Bool()) {
    e.migration =
        std::make_shared<const protocol::MigrationRecord>(GetMigration(r));
  }
  e.ingest_migration_id = r.U64();
  e.ingest_chunk_seq = r.U64();
  e.ingest_delta_seq = r.U64();
  e.ingest_content_hash = r.U64();
  return e;
}

void PutDigest(Writer& w, const protocol::SeedDigest& d) {
  w.U64(d.seq);
  w.U64(d.hash);
  PutKey(w, d.lo);
  PutKey(w, d.hi);
  w.Bool(d.last);
}
protocol::SeedDigest GetDigest(Reader& r) {
  protocol::SeedDigest d;
  d.seq = r.U64();
  d.hash = r.U64();
  d.lo = GetKey(r);
  d.hi = GetKey(r);
  d.last = r.Bool();
  return d;
}

void PutU64Vec(Writer& w, const std::vector<uint64_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (uint64_t item : v) w.U64(item);
}
std::vector<uint64_t> GetU64Vec(Reader& r) {
  const uint32_t n = r.Count();
  std::vector<uint64_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(r.U64());
  return v;
}

void PutStagedOp(Writer& w, const baselines::StagedOp& op) {
  PutKey(w, op.key);
  w.U64(op.expected_version);
  w.Bool(op.is_write);
  w.I64(op.write_value);
}
baselines::StagedOp GetStagedOp(Reader& r) {
  baselines::StagedOp op;
  op.key = GetKey(r);
  op.expected_version = r.U64();
  op.is_write = r.Bool();
  op.write_value = r.I64();
  return op;
}

void PutReadResult(Writer& w, const baselines::ReadResult& rr) {
  w.I64(rr.value);
  w.U64(rr.version);
}
baselines::ReadResult GetReadResult(Reader& r) {
  baselines::ReadResult rr;
  rr.value = r.I64();
  rr.version = r.U64();
  return rr;
}

template <typename T, typename PutFn>
void PutVec(Writer& w, const std::vector<T>& v, PutFn put) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const T& item : v) put(w, item);
}
template <typename T, typename GetFn>
std::vector<T> GetVec(Reader& r, GetFn get) {
  const uint32_t n = r.Count();
  std::vector<T> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(get(r));
  return v;
}

void PutI64Vec(Writer& w, const std::vector<int64_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (int64_t item : v) w.I64(item);
}
std::vector<int64_t> GetI64Vec(Reader& r) {
  const uint32_t n = r.Count();
  std::vector<int64_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(r.I64());
  return v;
}

void PutNodeVec(Writer& w, const std::vector<NodeId>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (NodeId item : v) w.I32(item);
}
std::vector<NodeId> GetNodeVec(Reader& r) {
  const uint32_t n = r.Count();
  std::vector<NodeId> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(r.I32());
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

std::string EncodeMessage(const MessageBase& msg) {
  using protocol::ClientRoundRequest;
  Writer w;
  w.U16(static_cast<uint16_t>(msg.type()));
  w.I32(msg.from);
  w.I32(msg.to);
  // Trace context: one absence byte for the (default) unsampled case so
  // disabled tracing costs one wire byte, not 24.
  if (msg.trace.valid()) {
    w.U8(1);
    w.U64(msg.trace.trace_id);
    w.U64(msg.trace.span_id);
    w.U64(msg.trace.parent_span_id);
  } else {
    w.U8(0);
  }
  switch (msg.type()) {
    case MessageType::kClientRoundRequest: {
      const auto& m = static_cast<const protocol::ClientRoundRequest&>(msg);
      w.U64(m.client_tag);
      w.U64(m.txn_id);
      w.U32(m.tenant);
      PutVec(w, m.ops, PutOp);
      w.Bool(m.last_round);
      break;
    }
    case MessageType::kClientRoundResponse: {
      const auto& m = static_cast<const protocol::ClientRoundResponse&>(msg);
      w.U64(m.client_tag);
      w.U64(m.txn_id);
      PutStatus(w, m.status);
      PutI64Vec(w, m.values);
      break;
    }
    case MessageType::kClientFinishRequest: {
      const auto& m = static_cast<const protocol::ClientFinishRequest&>(msg);
      w.U64(m.client_tag);
      w.U64(m.txn_id);
      w.Bool(m.commit);
      break;
    }
    case MessageType::kClientTxnResult: {
      const auto& m = static_cast<const protocol::ClientTxnResult&>(msg);
      w.U64(m.client_tag);
      w.U64(m.txn_id);
      PutStatus(w, m.status);
      break;
    }
    case MessageType::kBranchExecuteRequest: {
      const auto& m = static_cast<const protocol::BranchExecuteRequest&>(msg);
      PutXid(w, m.xid);
      w.U64(m.round_seq);
      w.Bool(m.begin_branch);
      PutVec(w, m.ops, PutOp);
      w.Bool(m.last_statement);
      PutNodeVec(w, m.peers);
      w.I32(m.coordinator);
      break;
    }
    case MessageType::kBranchExecuteResponse: {
      const auto& m = static_cast<const protocol::BranchExecuteResponse&>(msg);
      PutXid(w, m.xid);
      w.U64(m.round_seq);
      PutStatus(w, m.status);
      PutI64Vec(w, m.values);
      w.I64(m.local_exec_latency);
      w.Bool(m.rolled_back);
      break;
    }
    case MessageType::kPrepareRequest: {
      const auto& m = static_cast<const protocol::PrepareRequest&>(msg);
      PutXid(w, m.xid);
      break;
    }
    case MessageType::kPrepareBatch: {
      const auto& m = static_cast<const protocol::PrepareBatch&>(msg);
      PutVec(w, m.xids, PutXid);
      break;
    }
    case MessageType::kVoteMessage: {
      const auto& m = static_cast<const protocol::VoteMessage&>(msg);
      PutXid(w, m.xid);
      w.U8(static_cast<uint8_t>(m.vote));
      break;
    }
    case MessageType::kDecisionRequest: {
      const auto& m = static_cast<const protocol::DecisionRequest&>(msg);
      PutXid(w, m.xid);
      w.Bool(m.commit);
      w.Bool(m.one_phase);
      break;
    }
    case MessageType::kDecisionBatch: {
      const auto& m = static_cast<const protocol::DecisionBatch&>(msg);
      PutVec(w, m.items, [](Writer& w2, const protocol::DecisionItem& it) {
        PutXid(w2, it.xid);
        w2.Bool(it.commit);
        w2.Bool(it.one_phase);
      });
      break;
    }
    case MessageType::kDecisionAck: {
      const auto& m = static_cast<const protocol::DecisionAck&>(msg);
      PutXid(w, m.xid);
      w.Bool(m.committed);
      w.Bool(m.one_phase);
      PutStatus(w, m.status);
      break;
    }
    case MessageType::kPeerAbortRequest: {
      const auto& m = static_cast<const protocol::PeerAbortRequest&>(msg);
      w.U64(m.txn_id);
      w.I32(m.origin);
      break;
    }
    case MessageType::kReplAppendRequest: {
      const auto& m = static_cast<const protocol::ReplAppendRequest&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.U64(m.prev_index);
      w.U64(m.prev_epoch);
      PutVec(w, m.entries, PutEntry);
      w.U64(m.commit_watermark);
      w.U64(m.compact_floor);
      w.U8(m.payload_codec);
      w.U32(m.payload_uncompressed_len);
      w.U64(m.payload_hash);
      w.Str(m.payload);
      break;
    }
    case MessageType::kReplAppendAck: {
      const auto& m = static_cast<const protocol::ReplAppendAck&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.U64(m.ack_index);
      w.Bool(m.ok);
      w.U32(m.codec_mask);
      break;
    }
    case MessageType::kReplVoteRequest: {
      const auto& m = static_cast<const protocol::ReplVoteRequest&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.U64(m.last_log_epoch);
      w.U64(m.last_log_index);
      break;
    }
    case MessageType::kReplVoteResponse: {
      const auto& m = static_cast<const protocol::ReplVoteResponse&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.Bool(m.granted);
      w.U64(m.voter_last_index);
      break;
    }
    case MessageType::kLeaderAnnounce: {
      const auto& m = static_cast<const protocol::LeaderAnnounce&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.I32(m.leader);
      break;
    }
    case MessageType::kNotLeaderResponse: {
      const auto& m = static_cast<const protocol::NotLeaderResponse&>(msg);
      w.I32(m.group);
      w.U64(m.epoch);
      w.I32(m.leader_hint);
      break;
    }
    case MessageType::kFollowerReadRequest: {
      const auto& m = static_cast<const protocol::FollowerReadRequest&>(msg);
      w.I32(m.group);
      w.U64(m.txn_id);
      w.U64(m.round_seq);
      PutVec(w, m.keys, PutKey);
      w.I64(m.max_staleness);
      break;
    }
    case MessageType::kFollowerReadResponse: {
      const auto& m = static_cast<const protocol::FollowerReadResponse&>(msg);
      w.I32(m.group);
      w.U64(m.txn_id);
      w.U64(m.round_seq);
      w.Bool(m.ok);
      w.I64(m.staleness);
      PutI64Vec(w, m.values);
      break;
    }
    case MessageType::kShardMigrateRequest: {
      const auto& m = static_cast<const protocol::ShardMigrateRequest&>(msg);
      w.U64(m.migration_id);
      PutRange(w, m.range);
      w.I32(m.dest);
      w.I32(m.dest_leader);
      w.U64(m.new_version);
      w.I64(m.timeout);
      break;
    }
    case MessageType::kShardMigrateCancel: {
      const auto& m = static_cast<const protocol::ShardMigrateCancel&>(msg);
      w.U64(m.migration_id);
      break;
    }
    case MessageType::kShardSnapshotChunk: {
      const auto& m = static_cast<const protocol::ShardSnapshotChunk&>(msg);
      w.U64(m.migration_id);
      w.I32(m.group);
      PutRange(w, m.range);
      w.U64(m.seq);
      w.Bool(m.last);
      w.U64(m.epoch);
      w.U64(m.base_index);
      w.U64(m.base_epoch);
      PutVec(w, m.records, PutWrite);
      w.U8(m.payload_codec);
      w.U32(m.payload_uncompressed_len);
      w.U64(m.content_hash);
      w.Str(m.payload);
      break;
    }
    case MessageType::kShardSnapshotAck: {
      const auto& m = static_cast<const protocol::ShardSnapshotAck&>(msg);
      w.U64(m.migration_id);
      w.U64(m.seq);
      w.U64(m.credit);
      w.U32(m.codec_mask);
      break;
    }
    case MessageType::kShardDeltaBatch: {
      const auto& m = static_cast<const protocol::ShardDeltaBatch&>(msg);
      w.U64(m.migration_id);
      w.U64(m.seq);
      PutVec(w, m.writes, PutWrite);
      break;
    }
    case MessageType::kShardDeltaAck: {
      const auto& m = static_cast<const protocol::ShardDeltaAck&>(msg);
      w.U64(m.migration_id);
      w.U64(m.seq);
      break;
    }
    case MessageType::kShardCutoverReady: {
      const auto& m = static_cast<const protocol::ShardCutoverReady&>(msg);
      w.U64(m.migration_id);
      PutRange(w, m.range);
      w.Bool(m.logged);
      break;
    }
    case MessageType::kShardMigrateAborted: {
      const auto& m = static_cast<const protocol::ShardMigrateAborted&>(msg);
      w.U64(m.migration_id);
      break;
    }
    case MessageType::kShardSeedOffer: {
      const auto& m = static_cast<const protocol::ShardSeedOffer&>(msg);
      w.U64(m.migration_id);
      w.I32(m.group);
      PutRange(w, m.range);
      w.U64(m.epoch);
      w.U64(m.base_index);
      w.U64(m.base_epoch);
      PutVec(w, m.digests, PutDigest);
      break;
    }
    case MessageType::kShardSeedDecline: {
      const auto& m = static_cast<const protocol::ShardSeedDecline&>(msg);
      w.U64(m.migration_id);
      w.I32(m.group);
      w.U64(m.epoch);
      PutU64Vec(w, m.declined);
      w.U64(m.delta_seq);
      w.U64(m.credit);
      w.U32(m.codec_mask);
      break;
    }
    case MessageType::kShardMapUpdate: {
      const auto& m = static_cast<const protocol::ShardMapUpdate&>(msg);
      PutVec(w, m.entries, PutRange);
      break;
    }
    case MessageType::kShardRedirect: {
      const auto& m = static_cast<const protocol::ShardRedirect&>(msg);
      w.U64(m.txn_id);
      w.U64(m.round_seq);
      PutRange(w, m.entry);
      break;
    }
    case MessageType::kPingRequest: {
      const auto& m = static_cast<const protocol::PingRequest&>(msg);
      w.U64(m.seq);
      w.I64(m.sent_at);
      w.U64(m.shard_epoch);
      break;
    }
    case MessageType::kPingResponse: {
      const auto& m = static_cast<const protocol::PingResponse&>(msg);
      w.U64(m.seq);
      w.I64(m.sent_at);
      w.U64(m.inflight);
      w.U64(m.run_queue);
      w.U64(m.run_queue_limit);
      w.U64(m.shard_epoch);
      PutVec(w, m.map_entries, PutRange);
      break;
    }
    case MessageType::kStoreReadRequest: {
      const auto& m = static_cast<const baselines::StoreReadRequest&>(msg);
      w.U64(m.txn);
      w.U64(m.req_id);
      PutVec(w, m.keys, PutKey);
      break;
    }
    case MessageType::kStoreReadResponse: {
      const auto& m = static_cast<const baselines::StoreReadResponse&>(msg);
      w.U64(m.txn);
      w.U64(m.req_id);
      PutStatus(w, m.status);
      PutVec(w, m.results, PutReadResult);
      break;
    }
    case MessageType::kStorePrepareRequest: {
      const auto& m = static_cast<const baselines::StorePrepareRequest&>(msg);
      w.U64(m.txn);
      PutVec(w, m.ops, PutStagedOp);
      break;
    }
    case MessageType::kStorePrepareResponse: {
      const auto& m = static_cast<const baselines::StorePrepareResponse&>(msg);
      w.U64(m.txn);
      PutStatus(w, m.status);
      break;
    }
    case MessageType::kStoreDecisionRequest: {
      const auto& m = static_cast<const baselines::StoreDecisionRequest&>(msg);
      w.U64(m.txn);
      w.Bool(m.commit);
      break;
    }
    case MessageType::kStoreDecisionAck: {
      const auto& m = static_cast<const baselines::StoreDecisionAck&>(msg);
      w.U64(m.txn);
      w.Bool(m.commit);
      break;
    }
    case MessageType::kYbBatchRequest: {
      const auto& m = static_cast<const baselines::YbBatchRequest&>(msg);
      w.U64(m.txn);
      w.U64(m.req_id);
      PutVec(w, m.ops, PutStagedOp);
      break;
    }
    case MessageType::kYbBatchResponse: {
      const auto& m = static_cast<const baselines::YbBatchResponse&>(msg);
      w.U64(m.txn);
      w.U64(m.req_id);
      PutStatus(w, m.status);
      PutVec(w, m.results, PutReadResult);
      break;
    }
    case MessageType::kYbResolveRequest: {
      const auto& m = static_cast<const baselines::YbResolveRequest&>(msg);
      w.U64(m.txn);
      w.Bool(m.commit);
      break;
    }
    case MessageType::kOverloadedResponse: {
      const auto& m = static_cast<const protocol::OverloadedResponse&>(msg);
      w.U64(m.client_tag);
      w.U32(m.tenant);
      w.I64(m.retry_after_hint);
      break;
    }
    case MessageType::kUnknown:
      GEOTP_CHECK(false, "codec: cannot encode kUnknown message");
  }
  return w.Take();
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

std::unique_ptr<MessageBase> DecodeMessage(const std::string& bytes) {
  Reader r(bytes);
  const auto type = static_cast<MessageType>(r.U16());
  const NodeId from = r.I32();
  const NodeId to = r.I32();
  obs::TraceContext trace;
  if (r.U8() != 0) {
    trace.trace_id = r.U64();
    trace.span_id = r.U64();
    trace.parent_span_id = r.U64();
  }
  if (!r.ok()) return nullptr;

  std::unique_ptr<MessageBase> out;
  switch (type) {
    case MessageType::kClientRoundRequest: {
      auto m = std::make_unique<protocol::ClientRoundRequest>();
      m->client_tag = r.U64();
      m->txn_id = r.U64();
      m->tenant = r.U32();
      m->ops = GetVec<protocol::ClientOp>(r, GetOp);
      m->last_round = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kClientRoundResponse: {
      auto m = std::make_unique<protocol::ClientRoundResponse>();
      m->client_tag = r.U64();
      m->txn_id = r.U64();
      m->status = GetStatus(r);
      m->values = GetI64Vec(r);
      out = std::move(m);
      break;
    }
    case MessageType::kClientFinishRequest: {
      auto m = std::make_unique<protocol::ClientFinishRequest>();
      m->client_tag = r.U64();
      m->txn_id = r.U64();
      m->commit = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kClientTxnResult: {
      auto m = std::make_unique<protocol::ClientTxnResult>();
      m->client_tag = r.U64();
      m->txn_id = r.U64();
      m->status = GetStatus(r);
      out = std::move(m);
      break;
    }
    case MessageType::kBranchExecuteRequest: {
      auto m = std::make_unique<protocol::BranchExecuteRequest>();
      m->xid = GetXid(r);
      m->round_seq = r.U64();
      m->begin_branch = r.Bool();
      m->ops = GetVec<protocol::ClientOp>(r, GetOp);
      m->last_statement = r.Bool();
      m->peers = GetNodeVec(r);
      m->coordinator = r.I32();
      out = std::move(m);
      break;
    }
    case MessageType::kBranchExecuteResponse: {
      auto m = std::make_unique<protocol::BranchExecuteResponse>();
      m->xid = GetXid(r);
      m->round_seq = r.U64();
      m->status = GetStatus(r);
      m->values = GetI64Vec(r);
      m->local_exec_latency = r.I64();
      m->rolled_back = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kPrepareRequest: {
      auto m = std::make_unique<protocol::PrepareRequest>();
      m->xid = GetXid(r);
      out = std::move(m);
      break;
    }
    case MessageType::kPrepareBatch: {
      auto m = std::make_unique<protocol::PrepareBatch>();
      m->xids = GetVec<Xid>(r, GetXid);
      out = std::move(m);
      break;
    }
    case MessageType::kVoteMessage: {
      auto m = std::make_unique<protocol::VoteMessage>();
      m->xid = GetXid(r);
      m->vote = static_cast<protocol::Vote>(r.U8());
      out = std::move(m);
      break;
    }
    case MessageType::kDecisionRequest: {
      auto m = std::make_unique<protocol::DecisionRequest>();
      m->xid = GetXid(r);
      m->commit = r.Bool();
      m->one_phase = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kDecisionBatch: {
      auto m = std::make_unique<protocol::DecisionBatch>();
      m->items = GetVec<protocol::DecisionItem>(r, [](Reader& r2) {
        protocol::DecisionItem it;
        it.xid = GetXid(r2);
        it.commit = r2.Bool();
        it.one_phase = r2.Bool();
        return it;
      });
      out = std::move(m);
      break;
    }
    case MessageType::kDecisionAck: {
      auto m = std::make_unique<protocol::DecisionAck>();
      m->xid = GetXid(r);
      m->committed = r.Bool();
      m->one_phase = r.Bool();
      m->status = GetStatus(r);
      out = std::move(m);
      break;
    }
    case MessageType::kPeerAbortRequest: {
      auto m = std::make_unique<protocol::PeerAbortRequest>();
      m->txn_id = r.U64();
      m->origin = r.I32();
      out = std::move(m);
      break;
    }
    case MessageType::kReplAppendRequest: {
      auto m = std::make_unique<protocol::ReplAppendRequest>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->prev_index = r.U64();
      m->prev_epoch = r.U64();
      m->entries = GetVec<protocol::ReplEntry>(r, GetEntry);
      m->commit_watermark = r.U64();
      m->compact_floor = r.U64();
      m->payload_codec = r.U8();
      m->payload_uncompressed_len = r.U32();
      m->payload_hash = r.U64();
      m->payload = r.Str();
      out = std::move(m);
      break;
    }
    case MessageType::kReplAppendAck: {
      auto m = std::make_unique<protocol::ReplAppendAck>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->ack_index = r.U64();
      m->ok = r.Bool();
      m->codec_mask = r.U32();
      out = std::move(m);
      break;
    }
    case MessageType::kReplVoteRequest: {
      auto m = std::make_unique<protocol::ReplVoteRequest>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->last_log_epoch = r.U64();
      m->last_log_index = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kReplVoteResponse: {
      auto m = std::make_unique<protocol::ReplVoteResponse>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->granted = r.Bool();
      m->voter_last_index = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kLeaderAnnounce: {
      auto m = std::make_unique<protocol::LeaderAnnounce>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->leader = r.I32();
      out = std::move(m);
      break;
    }
    case MessageType::kNotLeaderResponse: {
      auto m = std::make_unique<protocol::NotLeaderResponse>();
      m->group = r.I32();
      m->epoch = r.U64();
      m->leader_hint = r.I32();
      out = std::move(m);
      break;
    }
    case MessageType::kFollowerReadRequest: {
      auto m = std::make_unique<protocol::FollowerReadRequest>();
      m->group = r.I32();
      m->txn_id = r.U64();
      m->round_seq = r.U64();
      m->keys = GetVec<RecordKey>(r, GetKey);
      m->max_staleness = r.I64();
      out = std::move(m);
      break;
    }
    case MessageType::kFollowerReadResponse: {
      auto m = std::make_unique<protocol::FollowerReadResponse>();
      m->group = r.I32();
      m->txn_id = r.U64();
      m->round_seq = r.U64();
      m->ok = r.Bool();
      m->staleness = r.I64();
      m->values = GetI64Vec(r);
      out = std::move(m);
      break;
    }
    case MessageType::kShardMigrateRequest: {
      auto m = std::make_unique<protocol::ShardMigrateRequest>();
      m->migration_id = r.U64();
      m->range = GetRange(r);
      m->dest = r.I32();
      m->dest_leader = r.I32();
      m->new_version = r.U64();
      m->timeout = r.I64();
      out = std::move(m);
      break;
    }
    case MessageType::kShardMigrateCancel: {
      auto m = std::make_unique<protocol::ShardMigrateCancel>();
      m->migration_id = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kShardSnapshotChunk: {
      auto m = std::make_unique<protocol::ShardSnapshotChunk>();
      m->migration_id = r.U64();
      m->group = r.I32();
      m->range = GetRange(r);
      m->seq = r.U64();
      m->last = r.Bool();
      m->epoch = r.U64();
      m->base_index = r.U64();
      m->base_epoch = r.U64();
      m->records = GetVec<protocol::ReplWrite>(r, GetWrite);
      m->payload_codec = r.U8();
      m->payload_uncompressed_len = r.U32();
      m->content_hash = r.U64();
      m->payload = r.Str();
      out = std::move(m);
      break;
    }
    case MessageType::kShardSnapshotAck: {
      auto m = std::make_unique<protocol::ShardSnapshotAck>();
      m->migration_id = r.U64();
      m->seq = r.U64();
      m->credit = r.U64();
      m->codec_mask = r.U32();
      out = std::move(m);
      break;
    }
    case MessageType::kShardDeltaBatch: {
      auto m = std::make_unique<protocol::ShardDeltaBatch>();
      m->migration_id = r.U64();
      m->seq = r.U64();
      m->writes = GetVec<protocol::ReplWrite>(r, GetWrite);
      out = std::move(m);
      break;
    }
    case MessageType::kShardDeltaAck: {
      auto m = std::make_unique<protocol::ShardDeltaAck>();
      m->migration_id = r.U64();
      m->seq = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kShardCutoverReady: {
      auto m = std::make_unique<protocol::ShardCutoverReady>();
      m->migration_id = r.U64();
      m->range = GetRange(r);
      m->logged = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kShardMigrateAborted: {
      auto m = std::make_unique<protocol::ShardMigrateAborted>();
      m->migration_id = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kShardSeedOffer: {
      auto m = std::make_unique<protocol::ShardSeedOffer>();
      m->migration_id = r.U64();
      m->group = r.I32();
      m->range = GetRange(r);
      m->epoch = r.U64();
      m->base_index = r.U64();
      m->base_epoch = r.U64();
      m->digests = GetVec<protocol::SeedDigest>(r, GetDigest);
      out = std::move(m);
      break;
    }
    case MessageType::kShardSeedDecline: {
      auto m = std::make_unique<protocol::ShardSeedDecline>();
      m->migration_id = r.U64();
      m->group = r.I32();
      m->epoch = r.U64();
      m->declined = GetU64Vec(r);
      m->delta_seq = r.U64();
      m->credit = r.U64();
      m->codec_mask = r.U32();
      out = std::move(m);
      break;
    }
    case MessageType::kShardMapUpdate: {
      auto m = std::make_unique<protocol::ShardMapUpdate>();
      m->entries = GetVec<sharding::ShardRange>(r, GetRange);
      out = std::move(m);
      break;
    }
    case MessageType::kShardRedirect: {
      auto m = std::make_unique<protocol::ShardRedirect>();
      m->txn_id = r.U64();
      m->round_seq = r.U64();
      m->entry = GetRange(r);
      out = std::move(m);
      break;
    }
    case MessageType::kPingRequest: {
      auto m = std::make_unique<protocol::PingRequest>();
      m->seq = r.U64();
      m->sent_at = r.I64();
      m->shard_epoch = r.U64();
      out = std::move(m);
      break;
    }
    case MessageType::kPingResponse: {
      auto m = std::make_unique<protocol::PingResponse>();
      m->seq = r.U64();
      m->sent_at = r.I64();
      m->inflight = r.U64();
      m->run_queue = r.U64();
      m->run_queue_limit = r.U64();
      m->shard_epoch = r.U64();
      m->map_entries = GetVec<sharding::ShardRange>(r, GetRange);
      out = std::move(m);
      break;
    }
    case MessageType::kStoreReadRequest: {
      auto m = std::make_unique<baselines::StoreReadRequest>();
      m->txn = r.U64();
      m->req_id = r.U64();
      m->keys = GetVec<RecordKey>(r, GetKey);
      out = std::move(m);
      break;
    }
    case MessageType::kStoreReadResponse: {
      auto m = std::make_unique<baselines::StoreReadResponse>();
      m->txn = r.U64();
      m->req_id = r.U64();
      m->status = GetStatus(r);
      m->results = GetVec<baselines::ReadResult>(r, GetReadResult);
      out = std::move(m);
      break;
    }
    case MessageType::kStorePrepareRequest: {
      auto m = std::make_unique<baselines::StorePrepareRequest>();
      m->txn = r.U64();
      m->ops = GetVec<baselines::StagedOp>(r, GetStagedOp);
      out = std::move(m);
      break;
    }
    case MessageType::kStorePrepareResponse: {
      auto m = std::make_unique<baselines::StorePrepareResponse>();
      m->txn = r.U64();
      m->status = GetStatus(r);
      out = std::move(m);
      break;
    }
    case MessageType::kStoreDecisionRequest: {
      auto m = std::make_unique<baselines::StoreDecisionRequest>();
      m->txn = r.U64();
      m->commit = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kStoreDecisionAck: {
      auto m = std::make_unique<baselines::StoreDecisionAck>();
      m->txn = r.U64();
      m->commit = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kYbBatchRequest: {
      auto m = std::make_unique<baselines::YbBatchRequest>();
      m->txn = r.U64();
      m->req_id = r.U64();
      m->ops = GetVec<baselines::StagedOp>(r, GetStagedOp);
      out = std::move(m);
      break;
    }
    case MessageType::kYbBatchResponse: {
      auto m = std::make_unique<baselines::YbBatchResponse>();
      m->txn = r.U64();
      m->req_id = r.U64();
      m->status = GetStatus(r);
      m->results = GetVec<baselines::ReadResult>(r, GetReadResult);
      out = std::move(m);
      break;
    }
    case MessageType::kYbResolveRequest: {
      auto m = std::make_unique<baselines::YbResolveRequest>();
      m->txn = r.U64();
      m->commit = r.Bool();
      out = std::move(m);
      break;
    }
    case MessageType::kOverloadedResponse: {
      auto m = std::make_unique<protocol::OverloadedResponse>();
      m->client_tag = r.U64();
      m->tenant = r.U32();
      m->retry_after_hint = r.I64();
      out = std::move(m);
      break;
    }
    case MessageType::kUnknown:
      return nullptr;
  }
  if (out == nullptr || !r.AtEnd()) return nullptr;
  out->from = from;
  out->to = to;
  out->trace = trace;
  return out;
}

}  // namespace runtime
}  // namespace geotp
