// MessageBase / MessageType: the wire-level message vocabulary of the
// protocol stack, independent of any execution backend.
//
// Historically these lived in sim/network.h because the discrete-event
// simulator was the only thing that could deliver a message. The pluggable
// runtime moves them here: the same message structs now travel either
// through sim::Network (virtual time, sampled link latency) or through the
// loopback runtime's TCP sockets (real threads, real wire bytes via
// runtime/codec.h). sim/network.h aliases these names so existing
// `sim::MessageBase` spellings keep compiling.
#ifndef GEOTP_RUNTIME_MESSAGE_H_
#define GEOTP_RUNTIME_MESSAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "obs/trace.h"

namespace geotp {
namespace runtime {

/// Tag identifying each concrete message type so receivers can dispatch
/// with one switch instead of a dynamic_cast chain (the cast chains showed
/// up prominently in simulator profiles) and the loopback codec can frame
/// messages on the wire. Values cover every message in src/protocol and
/// src/baselines; the runtimes themselves never interpret them.
enum class MessageType : uint16_t {
  kUnknown = 0,
  // Client <-> middleware.
  kClientRoundRequest,
  kClientRoundResponse,
  kClientFinishRequest,
  kClientTxnResult,
  // Middleware <-> data source.
  kBranchExecuteRequest,
  kBranchExecuteResponse,
  kPrepareRequest,
  kPrepareBatch,
  kVoteMessage,
  kDecisionRequest,
  kDecisionBatch,
  kDecisionAck,
  kPeerAbortRequest,
  // Replication.
  kReplAppendRequest,
  kReplAppendAck,
  kReplVoteRequest,
  kReplVoteResponse,
  kLeaderAnnounce,
  kNotLeaderResponse,
  kFollowerReadRequest,
  kFollowerReadResponse,
  // Elastic sharding (src/sharding).
  kShardMigrateRequest,
  kShardMigrateCancel,
  kShardSnapshotChunk,
  kShardSnapshotAck,
  kShardDeltaBatch,
  kShardDeltaAck,
  kShardCutoverReady,
  kShardMigrateAborted,
  kShardMapUpdate,
  kShardRedirect,
  // Latency monitoring.
  kPingRequest,
  kPingResponse,
  // Baseline stores (src/baselines).
  kStoreReadRequest,
  kStoreReadResponse,
  kStorePrepareRequest,
  kStorePrepareResponse,
  kStoreDecisionRequest,
  kStoreDecisionAck,
  kYbBatchRequest,
  kYbBatchResponse,
  kYbResolveRequest,
  // Overload control (appended so earlier wire values stay stable).
  kOverloadedResponse,
  // Incremental re-seed handshake (appended likewise).
  kShardSeedOffer,
  kShardSeedDecline,
};

/// Base class for anything sent between actors. Concrete message types
/// live in src/protocol (and src/baselines for the baseline stores).
struct MessageBase {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Distributed-tracing context piggybacked on every envelope. Invalid
  /// (trace_id 0) unless the transaction was sampled; the codec encodes
  /// an invalid context as a single absence byte.
  obs::TraceContext trace;
  virtual ~MessageBase() = default;

  /// Dispatch tag; every concrete message overrides this.
  virtual MessageType type() const { return MessageType::kUnknown; }

  /// Approximate wire size, only used for traffic accounting.
  virtual size_t WireSize() const { return 64; }
};

}  // namespace runtime
}  // namespace geotp

#endif  // GEOTP_RUNTIME_MESSAGE_H_
