// LoopbackRuntime: the real-execution backend behind the runtime seams.
//
// Where SimRuntime multiplexes every actor onto one virtual-time event
// loop, the loopback runtime gives each actor its own OS thread (an
// ActorExecutor: mailbox + timer heap driven by the monotonic clock) and
// carries messages between processes over TCP loopback sockets using the
// runtime/codec.h wire format. Durability is real: each IStableStorage is
// a file and every Flush is a write + fdatasync on a per-device flusher
// thread.
//
// Threading model — the same single-threaded-actor discipline as the
// simulator, enforced by construction rather than by convention:
//   * every handler invocation and timer callback of a node runs on that
//     node's executor thread, one at a time, in posted order;
//   * Send() may be called from any thread (it only enqueues — locally
//     onto the destination mailbox, remotely onto a socket);
//   * Schedule()/Cancel() on a node's timer may be called from any thread.
// Actor state therefore never needs its own locks, exactly as in the sim.
//
// Topology: Listen() binds a TCP socket (port 0 = ephemeral; the chosen
// port is reported so a parent process can collect it), AddRoute() maps a
// remote node id to its owning process's port. A Send to a node that is
// neither local nor routed is dropped with a log line — the loopback
// transport models an unreachable peer the way a real network does, it
// does not crash the sender.
#ifndef GEOTP_RUNTIME_LOOPBACK_RUNTIME_H_
#define GEOTP_RUNTIME_LOOPBACK_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/runtime.h"

namespace geotp {
namespace runtime {

/// One actor's executor: a thread draining a mailbox of closures and a
/// timer heap. Implements ITimer against the real monotonic clock (Micros
/// since the runtime's epoch, so timestamps are comparable across actors
/// of one process).
class ActorExecutor : public ITimer {
 public:
  ActorExecutor(std::string name,
                std::chrono::steady_clock::time_point epoch);
  ~ActorExecutor() override;

  ActorExecutor(const ActorExecutor&) = delete;
  ActorExecutor& operator=(const ActorExecutor&) = delete;

  /// Enqueues `fn` to run on the executor thread. Callable from any
  /// thread; after Stop() posts are silently dropped.
  void Post(std::function<void()> fn);

  /// Drains the mailbox and joins the thread. Pending timers never fire.
  void Stop();

  // ITimer (callable from any thread; callbacks run on this executor).
  Micros Now() const override;
  TimerId Schedule(Micros delay, std::function<void()> fn) override;
  TimerId ScheduleAt(Micros when, std::function<void()> fn) override;
  bool Cancel(TimerId id) override;

 private:
  struct Timer {
    Micros when;
    TimerId id;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      // Heap order: earliest deadline first; FIFO among equal deadlines
      // (ids are allocated monotonically), matching the simulator.
      return when != other.when ? when > other.when : id > other.id;
    }
  };

  /// Mailbox entry; `enqueued` is only stamped while the executor
  /// profiler is enabled (queue-wait attribution).
  struct MailboxItem {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void Run();

  const std::string name_;
  const std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<MailboxItem> mailbox_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, bool> live_;  ///< id -> not cancelled
  TimerId next_timer_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

/// TCP-loopback transport. Local destinations get the decoded message
/// posted straight onto their executor; remote destinations get a
/// length-prefixed codec frame written to the owning process's socket.
class LoopbackTransport : public ITransport {
 public:
  using ExecutorLookup = std::function<ActorExecutor*(NodeId)>;

  explicit LoopbackTransport(ExecutorLookup executor_for);
  ~LoopbackTransport() override;

  /// Binds the listening socket on 127.0.0.1 (`port` 0 = ephemeral) and
  /// starts the accept thread. Returns the bound port.
  int Listen(int port);

  /// Declares that `node` lives in the process listening on `port`.
  void AddRoute(NodeId node, int port);

  /// Closes the listener and every connection; joins reader threads.
  void Shutdown();

  /// Total frames decoded off sockets (smoke-driver accounting).
  uint64_t frames_received() const { return frames_received_.load(); }
  uint64_t frames_sent() const { return frames_sent_.load(); }

  // ITransport.
  void RegisterNode(NodeId node, Handler handler) override;
  void Send(std::unique_ptr<MessageBase> msg) override;

 private:
  void AcceptLoop();
  void ReadLoop(int fd);
  /// Connects (once, cached) to the process owning `node`; -1 = no route.
  int ConnectionTo(NodeId node);
  void DeliverLocal(std::unique_ptr<MessageBase> msg);

  ExecutorLookup executor_for_;
  std::mutex mu_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<NodeId, int> routes_;      ///< node -> remote port
  std::unordered_map<int, int> connections_;    ///< port -> connected fd
  std::unordered_map<int, std::unique_ptr<std::mutex>> write_mutexes_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> readers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
};

/// File-backed stable storage: Flush appends the batch to the device file
/// and fdatasyncs it on a dedicated flusher thread, then posts `done` back
/// to the owning actor's executor. The cost hint is ignored — the disk
/// decides how long a flush takes, which is the point of this backend.
class LoopbackStableStorage : public IStableStorage {
 public:
  LoopbackStableStorage(const std::string& path, ActorExecutor* owner);
  ~LoopbackStableStorage() override;

  void Flush(std::string batch, Micros cost_hint,
             std::function<void()> done) override;
  uint64_t fsyncs() const override { return fsyncs_.load(); }
  uint64_t bytes_flushed() const override { return bytes_flushed_.load(); }

 private:
  struct Job {
    std::string batch;
    std::function<void()> done;
  };
  void Run();

  ActorExecutor* owner_;
  int fd_ = -1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  bool stopping_ = false;
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_flushed_{0};
  std::thread thread_;
};

struct LoopbackConfig {
  /// Directory for WAL / decision-log device files (created if missing).
  std::string data_dir = "/tmp/geotp-loopback";
  /// Listening port; 0 picks an ephemeral port (see port()).
  int port = 0;
};

/// The Runtime implementation tying the three pieces together for one OS
/// process. Actors hosted here get their own executor threads; peers in
/// other processes are reached through AddRoute().
class LoopbackRuntime : public Runtime {
 public:
  explicit LoopbackRuntime(LoopbackConfig config);
  ~LoopbackRuntime() override;

  ITransport* transport() override { return &transport_; }
  ITimer* TimerFor(NodeId node) override { return ExecutorFor(node); }
  std::unique_ptr<IStableStorage> OpenStorage(NodeId node,
                                              const std::string& name) override;

  int port() const { return port_; }
  void AddRoute(NodeId node, int port) { transport_.AddRoute(node, port); }
  LoopbackTransport& loopback_transport() { return transport_; }

  /// Stops the transport first (no new deliveries), then every executor.
  void Shutdown();

 private:
  ActorExecutor* ExecutorFor(NodeId node);

  LoopbackConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  LoopbackTransport transport_;
  std::mutex mu_;
  std::unordered_map<NodeId, std::unique_ptr<ActorExecutor>> executors_;
  int port_ = -1;
  bool shut_down_ = false;
};

}  // namespace runtime
}  // namespace geotp

#endif  // GEOTP_RUNTIME_LOOPBACK_RUNTIME_H_
