#include "runtime/loopback_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/profiler.h"
#include "runtime/codec.h"

namespace geotp {
namespace runtime {

// ---------------------------------------------------------------------------
// ActorExecutor
// ---------------------------------------------------------------------------

ActorExecutor::ActorExecutor(std::string name,
                             std::chrono::steady_clock::time_point epoch)
    : name_(std::move(name)), epoch_(epoch) {
  thread_ = std::thread([this]() { Run(); });
}

ActorExecutor::~ActorExecutor() { Stop(); }

Micros ActorExecutor::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ActorExecutor::Post(std::function<void()> fn) {
  MailboxItem item{std::move(fn), {}};
  if (obs::GlobalProfiler().enabled()) {
    item.enqueued = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    mailbox_.push_back(std::move(item));
  }
  cv_.notify_one();
}

TimerId ActorExecutor::Schedule(Micros delay, std::function<void()> fn) {
  return ScheduleAt(Now() + std::max<Micros>(delay, 0), std::move(fn));
}

TimerId ActorExecutor::ScheduleAt(Micros when, std::function<void()> fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return kInvalidTimer;
    id = next_timer_++;
    live_[id] = true;
    timers_.push(Timer{when, id, std::move(fn)});
  }
  cv_.notify_one();
  return id;
}

bool ActorExecutor::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end() || !it->second) return false;
  it->second = false;  // the heap entry becomes a no-op when it surfaces
  return true;
}

void ActorExecutor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined (idempotent
      // Stop from the destructor after an explicit Stop).
    }
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void ActorExecutor::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Drop cancelled timers surfacing at the top of the heap.
    while (!timers_.empty() && !live_[timers_.top().id]) {
      live_.erase(timers_.top().id);
      timers_.pop();
    }
    if (!mailbox_.empty()) {
      MailboxItem item = std::move(mailbox_.front());
      mailbox_.pop_front();
      lock.unlock();
      obs::Profiler& profiler = obs::GlobalProfiler();
      if (profiler.enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        if (item.enqueued.time_since_epoch().count() != 0) {
          profiler.RecordQueueWait(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  t0 - item.enqueued)
                  .count()));
        }
        item.fn();
        profiler.RecordTask(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      } else {
        item.fn();
      }
      lock.lock();
      continue;
    }
    if (stopping_) return;
    if (!timers_.empty()) {
      const Micros now = Now();
      if (timers_.top().when <= now) {
        Timer timer = timers_.top();
        timers_.pop();
        live_.erase(timer.id);
        lock.unlock();
        obs::Profiler& profiler = obs::GlobalProfiler();
        if (profiler.enabled() && now > timer.when) {
          profiler.RecordTimerLag(static_cast<uint64_t>(now - timer.when));
        }
        timer.fn();
        lock.lock();
        continue;
      }
      cv_.wait_for(lock,
                   std::chrono::microseconds(timers_.top().when - now));
      continue;
    }
    cv_.wait(lock);
  }
}

// ---------------------------------------------------------------------------
// LoopbackTransport
// ---------------------------------------------------------------------------

namespace {

bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer closed or hard error
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

LoopbackTransport::LoopbackTransport(ExecutorLookup executor_for)
    : executor_for_(std::move(executor_for)) {}

LoopbackTransport::~LoopbackTransport() { Shutdown(); }

int LoopbackTransport::Listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GEOTP_CHECK(listen_fd_ >= 0, "loopback: socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  GEOTP_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "loopback: bind: " << std::strerror(errno));
  GEOTP_CHECK(::listen(listen_fd_, 64) == 0,
              "loopback: listen: " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return ntohs(addr.sin_port);
}

void LoopbackTransport::AddRoute(NodeId node, int port) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = port;
}

void LoopbackTransport::RegisterNode(NodeId node, Handler handler) {
  executor_for_(node);  // the executor must exist before frames arrive
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[node] = std::move(handler);
}

void LoopbackTransport::Send(std::unique_ptr<MessageBase> msg) {
  const NodeId to = msg->to;
  bool local = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    local = handlers_.count(to) != 0;
  }
  if (local) {
    // Local fast path: no serialization, straight onto the mailbox.
    ActorExecutor* executor = executor_for_(to);
    auto* raw = msg.release();
    executor->Post([this, raw]() {
      DeliverLocal(std::unique_ptr<MessageBase>(raw));
    });
    return;
  }
  const int fd = ConnectionTo(to);
  if (fd < 0) {
    GEOTP_WARN( "loopback: no route to node " << to << "; dropping "
                                                  << static_cast<int>(
                                                         msg->type()));
    return;
  }
  const std::string payload = EncodeMessage(*msg);
  std::string frame;
  const uint32_t frame_len = static_cast<uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&frame_len), sizeof(frame_len));
  frame.append(payload);
  std::mutex* write_mu = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = write_mutexes_[fd];
    if (slot == nullptr) slot = std::make_unique<std::mutex>();
    write_mu = slot.get();
  }
  {
    // One writer at a time per socket so frames never interleave; mu_ is
    // NOT held across the (possibly blocking) write, so a full socket
    // buffer cannot wedge local delivery.
    std::lock_guard<std::mutex> lock(*write_mu);
    if (shutdown_.load()) return;  // fd is closed (or about to be)
    if (!WriteAll(fd, frame.data(), frame.size())) {
      GEOTP_WARN("loopback: write to node " << to << " failed");
      return;
    }
  }
  frames_sent_.fetch_add(1);
}

void LoopbackTransport::DeliverLocal(std::unique_ptr<MessageBase> msg) {
  Handler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(msg->to);
    if (it != handlers_.end()) handler = &it->second;
  }
  if (handler == nullptr) return;  // actor unregistered while in flight
  obs::Profiler& profiler = obs::GlobalProfiler();
  if (!profiler.enabled()) {
    (*handler)(std::move(msg));
    return;
  }
  // Per-message-type handler wall time, the loopback counterpart of the
  // sim::Network delivery profile.
  const int msg_type = static_cast<int>(msg->type());
  const auto t0 = std::chrono::steady_clock::now();
  (*handler)(std::move(msg));
  profiler.RecordHandler(
      msg_type,
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
}

int LoopbackTransport::ConnectionTo(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto route = routes_.find(node);
  if (route == routes_.end()) return -1;
  const int port = route->second;
  auto conn = connections_.find(port);
  if (conn != connections_.end()) return conn->second;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  connections_[port] = fd;
  return fd;
}

void LoopbackTransport::AcceptLoop() {
  while (!shutdown_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_.load()) {
      ::close(fd);
      return;
    }
    readers_.emplace_back([this, fd]() { ReadLoop(fd); });
  }
}

void LoopbackTransport::ReadLoop(int fd) {
  while (!shutdown_.load()) {
    uint32_t frame_len = 0;
    if (!ReadAll(fd, reinterpret_cast<char*>(&frame_len), sizeof(frame_len))) {
      break;
    }
    // 16 MiB frame cap: a corrupt length must fail loudly, not OOM.
    if (frame_len > (16u << 20)) {
      GEOTP_WARN( "loopback: oversized frame (" << frame_len << " bytes)");
      break;
    }
    std::string payload(frame_len, '\0');
    if (!ReadAll(fd, payload.data(), frame_len)) break;
    std::unique_ptr<MessageBase> msg = DecodeMessage(payload);
    if (msg == nullptr) {
      GEOTP_WARN( "loopback: dropping malformed frame ("
                          << frame_len << " bytes)");
      continue;
    }
    frames_received_.fetch_add(1);
    ActorExecutor* executor = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (handlers_.count(msg->to) != 0) executor = executor_for_(msg->to);
    }
    if (executor == nullptr) {
      GEOTP_WARN( "loopback: frame for unhosted node " << msg->to);
      continue;
    }
    auto* raw = msg.release();
    executor->Post([this, raw]() {
      DeliverLocal(std::unique_ptr<MessageBase>(raw));
    });
  }
  ::close(fd);
}

void LoopbackTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [port, fd] : connections_) {
      (void)port;
      // shutdown() first: it unwedges a sender blocked inside write()
      // without invalidating the fd. Then take that socket's write mutex
      // so no sender is mid-WriteAll when close() retires the fd.
      ::shutdown(fd, SHUT_RDWR);
      std::unique_lock<std::mutex> write_lock;
      auto it = write_mutexes_.find(fd);
      if (it != write_mutexes_.end()) {
        write_lock = std::unique_lock<std::mutex>(*it->second);
      }
      ::close(fd);
    }
    connections_.clear();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
}

// ---------------------------------------------------------------------------
// LoopbackStableStorage
// ---------------------------------------------------------------------------

LoopbackStableStorage::LoopbackStableStorage(const std::string& path,
                                             ActorExecutor* owner)
    : owner_(owner) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  GEOTP_CHECK(fd_ >= 0,
              "loopback: open " << path << ": " << std::strerror(errno));
  thread_ = std::thread([this]() { Run(); });
}

LoopbackStableStorage::~LoopbackStableStorage() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

void LoopbackStableStorage::Flush(std::string batch, Micros cost_hint,
                                  std::function<void()> done) {
  (void)cost_hint;  // the disk sets the price here, not the simulator
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    jobs_.push_back(Job{std::move(batch), std::move(done)});
  }
  cv_.notify_one();
}

void LoopbackStableStorage::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) return;  // stopping with a drained queue
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    lock.unlock();
    if (!job.batch.empty()) {
      WriteAll(fd_, job.batch.data(), job.batch.size());
    }
    ::fdatasync(fd_);
    fsyncs_.fetch_add(1);
    bytes_flushed_.fetch_add(job.batch.size());
    if (job.done) {
      // Completion runs on the owning actor's thread, like every other
      // event of that actor.
      owner_->Post(std::move(job.done));
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// LoopbackRuntime
// ---------------------------------------------------------------------------

LoopbackRuntime::LoopbackRuntime(LoopbackConfig config)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()),
      transport_([this](NodeId node) { return ExecutorFor(node); }) {
  ::mkdir(config_.data_dir.c_str(), 0755);
  port_ = transport_.Listen(config_.port);
}

LoopbackRuntime::~LoopbackRuntime() { Shutdown(); }

ActorExecutor* LoopbackRuntime::ExecutorFor(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = executors_.find(node);
  if (it != executors_.end()) return it->second.get();
  auto executor = std::make_unique<ActorExecutor>(
      "node-" + std::to_string(node), epoch_);
  ActorExecutor* raw = executor.get();
  executors_[node] = std::move(executor);
  return raw;
}

std::unique_ptr<IStableStorage> LoopbackRuntime::OpenStorage(
    NodeId node, const std::string& name) {
  const std::string path =
      config_.data_dir + "/node-" + std::to_string(node) + "-" + name;
  return std::make_unique<LoopbackStableStorage>(path, ExecutorFor(node));
}

void LoopbackRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  transport_.Shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [node, executor] : executors_) {
    (void)node;
    executor->Stop();
  }
}

}  // namespace runtime
}  // namespace geotp
