// Figure 10: impact of the network latency configuration. (a) fixed
// standard deviation, growing mean; (b) fixed mean, growing deviation.
// Three remote data sources; e.g. mean 20ms -> RTTs {10, 20, 30}.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

double RunOnce(SystemKind system, const std::vector<double>& rtts) {
  ExperimentConfig config = DefaultConfig();
  config.system = system;
  config.ds_rtts_ms = rtts;
  config.ycsb.theta = 0.9;
  config.ycsb.distributed_ratio = 0.5;
  return RunTracked(config).Tps();
}

}  // namespace

int main() {
  PrintHeader("Fig. 10a — fixed std (10ms), growing mean RTT");
  std::printf("%-10s %10s %10s %12s\n", "mean(ms)", "SSP", "GeoTP",
              "improvement");
  for (double mean : {20.0, 40.0, 60.0, 80.0}) {
    const std::vector<double> rtts = {mean - 10.0, mean, mean + 10.0};
    const double ssp = RunOnce(SystemKind::kSSP, rtts);
    const double geotp = RunOnce(SystemKind::kGeoTP, rtts);
    std::printf("%-10.0f %10.1f %10.1f %11.2fx\n", mean, ssp, geotp,
                ssp > 0 ? geotp / ssp : 0.0);
    std::fflush(stdout);
  }

  PrintHeader("Fig. 10b — fixed mean (50ms), growing std");
  std::printf("%-10s %10s %10s %12s\n", "std(ms)", "SSP", "GeoTP",
              "improvement");
  for (double stddev : {0.0, 20.0, 40.0, 60.0}) {
    const std::vector<double> rtts = {50.0 - stddev, 50.0, 50.0 + stddev};
    const double ssp = RunOnce(SystemKind::kSSP, rtts);
    const double geotp = RunOnce(SystemKind::kGeoTP, rtts);
    std::printf("%-10.0f %10.1f %10.1f %11.2fx\n", stddev, ssp, geotp,
                ssp > 0 ? geotp / ssp : 0.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper Fig. 10): throughput of both systems falls\n"
      "as the mean grows but GeoTP's relative advantage grows; with fixed\n"
      "mean and growing deviation SSP stays flat-to-worse while GeoTP\n"
      "keeps improving (it exploits the latency differences).\n");
  return 0;
}
