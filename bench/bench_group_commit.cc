// Group-commit sweep: batch delay x concurrency.
//
// The paper's Fig. 6 cost breakdown shows durability (the XA PREPARE and
// COMMIT fsyncs) dominating data-source time. This bench quantifies how
// much of that cost group commit amortizes: for each terminal count it
// runs the unbatched baseline (one independent fsync per record, the
// pre-group-commit model) against group commit at several batch-delay
// settings, reporting committed throughput, mean latency, WAL entries vs
// physical fsyncs, and fsyncs per committed transaction.
//
// Acceptance tracking: at >= 64 terminals the batched rows must show
// >= 30% fewer fsyncs per commit than the unbatched baseline (the closing
// summary line states the measured reduction).
#include <cstdio>

#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

struct Row {
  int terminals;
  const char* label;
  ExperimentResult result;
};

ExperimentResult RunOne(int terminals, bool batching, Micros batch_delay) {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.driver.terminals = terminals;
  config.ycsb.theta = 0.7;
  config.ycsb.distributed_ratio = 0.2;
  config.ds_tweak = [batching, batch_delay](datasource::DataSourceConfig* ds) {
    ds->group_commit.enabled = batching;
    ds->group_commit.max_batch_delay = batch_delay;
  };
  return RunTracked(config);
}

void PrintDetail(const Row& row) {
  const auto& r = row.result;
  std::printf(
      "%4d %-14s  tput=%8.1f txn/s  mean=%7.1f ms  entries=%7llu  "
      "fsyncs=%7llu  fsyncs/commit=%6.2f  max_batch=%llu\n",
      row.terminals, row.label, r.Tps(), r.MeanLatencyMs(),
      static_cast<unsigned long long>(r.wal_entries),
      static_cast<unsigned long long>(r.wal_fsyncs), r.FsyncsPerCommit(),
      static_cast<unsigned long long>(r.group_commit.max_batch_entries));
}

}  // namespace

int main() {
  PrintHeader("Group commit sweep (GeoTP, YCSB theta=0.7, 20% distributed)");
  std::printf("%4s %-14s\n", "term", "policy");

  const int kTerminals[] = {16, 64, 256};
  const Micros kDelays[] = {0, 200, 1000, 3000};

  double baseline_64 = 0.0;
  double best_batched_64 = -1.0;
  for (int terminals : kTerminals) {
    const ExperimentResult unbatched =
        RunOne(terminals, /*batching=*/false, 0);
    PrintDetail(Row{terminals, "unbatched", unbatched});
    if (terminals >= 64 && baseline_64 == 0.0) {
      baseline_64 = unbatched.FsyncsPerCommit();
    }
    for (Micros delay : kDelays) {
      char label[32];
      std::snprintf(label, sizeof(label), "batch(%lldus)",
                    static_cast<long long>(delay));
      const ExperimentResult batched = RunOne(terminals, true, delay);
      PrintDetail(Row{terminals, label, batched});
      if (terminals == 64 &&
          (best_batched_64 < 0 ||
           batched.FsyncsPerCommit() < best_batched_64)) {
        best_batched_64 = batched.FsyncsPerCommit();
      }
    }
  }

  if (baseline_64 > 0.0 && best_batched_64 >= 0.0) {
    const double reduction = 1.0 - best_batched_64 / baseline_64;
    std::printf(
        "summary: fsyncs/commit at 64 terminals: unbatched=%.2f "
        "batched(best)=%.2f reduction=%.1f%% (target >= 30%%)\n",
        baseline_64, best_batched_64, 100.0 * reduction);
    PrintSimWallSummary();
    std::printf("acceptance: %s\n", reduction >= 0.30 ? "PASS" : "FAIL");
  }
  return 0;
}
