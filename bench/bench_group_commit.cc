// Group-commit sweep: batch delay x concurrency.
//
// The paper's Fig. 6 cost breakdown shows durability (the XA PREPARE and
// COMMIT fsyncs) dominating data-source time. This bench quantifies how
// much of that cost group commit amortizes: for each terminal count it
// runs the unbatched baseline (one independent fsync per record, the
// pre-group-commit model) against group commit at several batch-delay
// settings, reporting committed throughput, mean latency, WAL entries vs
// physical fsyncs, and fsyncs per committed transaction.
//
// Acceptance tracking: at >= 64 terminals the batched rows must show
// >= 30% fewer fsyncs per commit than the unbatched baseline (the closing
// summary line states the measured reduction).
// WAN accounting: a second, replicated scenario measures the bytes the
// leader->follower log shipping puts on the (simulated) WAN, raw shipping
// vs the negotiated block compression. Acceptance additionally requires a
// >= 2x compression ratio on the shipped entry batches (the "wan:" line;
// scripts/run_bench.sh lifts it into BENCH_group_commit.json).
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "replication/replicator.h"
#include "sim/topology.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

struct Row {
  int terminals;
  const char* label;
  ExperimentResult result;
};

ExperimentResult RunOne(int terminals, bool batching, Micros batch_delay) {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.driver.terminals = terminals;
  config.ycsb.theta = 0.7;
  config.ycsb.distributed_ratio = 0.2;
  config.ds_tweak = [batching, batch_delay](datasource::DataSourceConfig* ds) {
    ds->group_commit.enabled = batching;
    ds->group_commit.max_batch_delay = batch_delay;
  };
  return RunTracked(config);
}

void PrintDetail(const Row& row) {
  const auto& r = row.result;
  std::printf(
      "%4d %-14s  tput=%8.1f txn/s  mean=%7.1f ms  entries=%7llu  "
      "fsyncs=%7llu  fsyncs/commit=%6.2f  max_batch=%llu\n",
      row.terminals, row.label, r.Tps(), r.MeanLatencyMs(),
      static_cast<unsigned long long>(r.wal_entries),
      static_cast<unsigned long long>(r.wal_fsyncs), r.FsyncsPerCommit(),
      static_cast<unsigned long long>(r.group_commit.max_batch_entries));
}

// ---------------------------------------------------------------------------
// WAN log-shipping accounting: two 3-replica groups behind one DM, same
// YCSB mix as the sweep above, assembled from library pieces (the single-
// DM runner does not wire replication). The leaders' shippers count every
// entry batch twice — packed bytes before the codec and bytes actually
// sent — so one compressed run yields the ratio directly, and a raw run
// (wan_compression off everywhere, so the codec negotiates down) provides
// the wire-parity baseline.
// ---------------------------------------------------------------------------

struct WanResult {
  uint64_t raw = 0;
  uint64_t wire = 0;
  uint64_t committed = 0;
};

WanResult RunWanShipping(bool compressed) {
  sim::TopologyBuilder builder;
  const NodeId client = builder.AddNode(sim::NodeRole::kClient, "c1", "bj");
  const NodeId dm = builder.AddNode(sim::NodeRole::kMiddleware, "dm1", "bj");
  const double rtts[2] = {27, 73};
  std::vector<NodeId> sources;
  std::vector<std::vector<NodeId>> groups;
  for (int i = 0; i < 2; ++i) {
    sources.push_back(builder.AddNode(sim::NodeRole::kDataSource,
                                      "ds" + std::to_string(i + 1),
                                      "region" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    const std::string region = "region" + std::to_string(i);
    std::vector<NodeId> group = {sources[static_cast<size_t>(i)]};
    for (int k = 0; k < 2; ++k) {
      const NodeId f = builder.AddNode(
          sim::NodeRole::kDataSource,
          "ds" + std::to_string(i + 1) + "f" + std::to_string(k), region);
      builder.SetRttMs(dm, f, rtts[i] + 1.0);
      builder.SetRttMs(client, f, rtts[i] + 1.0);
      group.push_back(f);
    }
    groups.push_back(std::move(group));
  }
  for (int i = 0; i < 2; ++i) {
    builder.SetRttMs(dm, sources[static_cast<size_t>(i)], rtts[i]);
    builder.SetRttMs(client, sources[static_cast<size_t>(i)], rtts[i]);
  }
  builder.SetRttMs(sources[0], sources[1], 73);
  builder.SetRttMs(client, dm, 0.5);

  sim::EventLoop loop;
  sim::Network network(&loop, builder.Build());

  middleware::MiddlewareConfig dm_config =
      workload::ConfigForSystem(SystemKind::kGeoTP);
  middleware::Catalog catalog;
  workload::YcsbConfig ycsb;
  ycsb.data_sources = sources;
  ycsb.theta = 0.7;
  ycsb.distributed_ratio = 0.2;
  workload::YcsbGenerator gen(ycsb);
  gen.RegisterTables(&catalog);
  for (const auto& group : groups) catalog.SetReplicaGroup(group[0], group);

  std::vector<std::unique_ptr<datasource::DataSourceNode>> nodes;
  for (const auto& group : groups) {
    for (NodeId replica : group) {
      datasource::DataSourceConfig ds_config =
          datasource::DataSourceConfig::MySql();
      ds_config.early_abort = dm_config.early_abort;
      ds_config.group_commit.enabled = true;
      ds_config.wan_compression = compressed;
      auto node = std::make_unique<datasource::DataSourceNode>(
          replica, &network, ds_config);
      replication::GroupConfig repl;
      repl.logical = group[0];
      repl.replicas = group;
      repl.middlewares = {dm};
      node->EnableReplication(repl);
      node->Attach();
      nodes.push_back(std::move(node));
    }
  }
  middleware::MiddlewareNode node_dm(dm, 0, &network, std::move(catalog),
                                     dm_config);
  node_dm.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = 64;
  driver_config.warmup = SecToMicros(2);
  driver_config.measure = SecToMicros(12);
  workload::ClientDriver driver(client, &network, dm, &gen, driver_config);
  driver.Attach();
  driver.Start();
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  WanResult out;
  out.committed = driver.stats().committed;
  for (const auto& node : nodes) {
    if (node->replicator() != nullptr && node->replicator()->IsLeader()) {
      out.raw += node->replicator()->shipper_stats().wan_bytes_raw;
      out.wire += node->replicator()->shipper_stats().wan_bytes_wire;
    }
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("Group commit sweep (GeoTP, YCSB theta=0.7, 20% distributed)");
  std::printf("%4s %-14s\n", "term", "policy");

  const int kTerminals[] = {16, 64, 256};
  const Micros kDelays[] = {0, 200, 1000, 3000};

  double baseline_64 = 0.0;
  double best_batched_64 = -1.0;
  for (int terminals : kTerminals) {
    const ExperimentResult unbatched =
        RunOne(terminals, /*batching=*/false, 0);
    PrintDetail(Row{terminals, "unbatched", unbatched});
    if (terminals >= 64 && baseline_64 == 0.0) {
      baseline_64 = unbatched.FsyncsPerCommit();
    }
    for (Micros delay : kDelays) {
      char label[32];
      std::snprintf(label, sizeof(label), "batch(%lldus)",
                    static_cast<long long>(delay));
      const ExperimentResult batched = RunOne(terminals, true, delay);
      PrintDetail(Row{terminals, label, batched});
      if (terminals == 64 &&
          (best_batched_64 < 0 ||
           batched.FsyncsPerCommit() < best_batched_64)) {
        best_batched_64 = batched.FsyncsPerCommit();
      }
    }
  }

  std::printf(
      "\nWAN log shipping (two 3-replica groups, same YCSB mix, group "
      "commit on):\n");
  const WanResult raw_run = RunWanShipping(/*compressed=*/false);
  const WanResult zip_run = RunWanShipping(/*compressed=*/true);
  const double wan_ratio =
      zip_run.wire == 0 ? 0.0 : static_cast<double>(zip_run.raw) /
                                    static_cast<double>(zip_run.wire);
  std::printf(
      "raw shipping:   committed=%llu wire_bytes=%llu (== packed %llu)\n",
      static_cast<unsigned long long>(raw_run.committed),
      static_cast<unsigned long long>(raw_run.wire),
      static_cast<unsigned long long>(raw_run.raw));
  std::printf(
      "wan: raw_bytes=%llu wire_bytes=%llu ratio=%.2f (target >= 2.0)\n",
      static_cast<unsigned long long>(zip_run.raw),
      static_cast<unsigned long long>(zip_run.wire), wan_ratio);

  if (baseline_64 > 0.0 && best_batched_64 >= 0.0) {
    const double reduction = 1.0 - best_batched_64 / baseline_64;
    std::printf(
        "summary: fsyncs/commit at 64 terminals: unbatched=%.2f "
        "batched(best)=%.2f reduction=%.1f%% (target >= 30%%)\n",
        baseline_64, best_batched_64, 100.0 * reduction);
    PrintSimWallSummary();
    const bool pass = reduction >= 0.30 && wan_ratio >= 2.0;
    std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 1;
}
