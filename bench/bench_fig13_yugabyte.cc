// Figure 13: GeoTP vs YugabyteDB-style distributed database (and SSP as
// reference) across contention levels: throughput and average latency.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 13 — vs YugabyteDB over YCSB (dr=0.2)");
  std::printf("%-12s %14s %14s %14s\n", "contention", "SSP", "GeoTP",
              "YugabyteDB");
  struct Level { const char* name; double theta; };
  for (Level level : {Level{"low", 0.3}, Level{"medium", 0.9},
                      Level{"high", 1.5}}) {
    double tput[3], lat[3];
    int i = 0;
    for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP,
                              SystemKind::kYugabyte}) {
      ExperimentConfig config = DefaultConfig();
      config.system = system;
      config.ycsb.theta = level.theta;
      config.ycsb.distributed_ratio = 0.2;
      const auto r = RunTracked(config);
      tput[i] = r.Tps();
      lat[i] = r.MeanLatencyMs();
      ++i;
      std::fflush(stdout);
    }
    std::printf("%-12s", level.name);
    for (int j = 0; j < 3; ++j) {
      std::printf("  %7.1f/%-6.0f", tput[j], lat[j]);
    }
    std::printf("   (txn/s / mean ms)\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 13): Yugabyte wins at low contention\n"
      "(1-RTT single-shard commits, async apply), parity at medium, and\n"
      "GeoTP ~4.9x ahead at high contention where fail-fast intent\n"
      "conflicts collapse the distributed database.\n");
  return 0;
}
