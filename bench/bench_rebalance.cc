// Elastic sharding: skewed YCSB whose hot keys live on the FAR data
// source (mirror_keyspace pins the zipf head to the 251 ms London node),
// swept over skew x {static placement, hotspot-driven rebalancing}.
//
// With static placement the latency-aware scheduler can only hide the WAN
// round trips to the hot partition; with the balancer on, the hot chunks
// migrate to the DM-local source early in the run and both the p50
// latency and the distributed-transaction ratio drop. Acceptance: >= 20%
// p50 latency or distributed-ratio improvement at the headline skew.
//
// Second scenario — skew WITHIN one chunk: the far partition is a single
// huge preloaded chunk whose zipf head occupies a tiny sub-range.
// Migrating the whole chunk means ingesting every resident record at the
// destination, which blows the migration timeout every attempt; with
// online split the balancer carves the hot sub-range out (footprint heat
// histogram) and migrates only that. Acceptance: split p50 >= 20% better
// than the no-split baseline.
//
// Third scenario — large-range STREAMING: the same oversized preloaded
// chunk, but with a timeout that lets the whole-chunk move finish. The
// snapshot no longer ships as one message: it streams in bounded chunks
// under the destination's credit window, so the source's stream memory
// (its unacked retransmit buffer) must stay capped at the window while
// tens of chunks cross the WAN. Acceptance: the oversized migration
// completes, streams in >= 16 chunks, and the peak unacked-chunk
// watermark never exceeds the configured window.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

struct Row {
  ExperimentResult result;
  double p50_ms = 0;
  double dist_ratio = 0;
};

Row RunOne(double theta, bool elastic) {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.workload = workload::WorkloadKind::kYcsb;
  config.ycsb.theta = theta;
  config.ycsb.distributed_ratio = 0.3;
  // Hot head on the far (251 ms) partition: the scenario static
  // placement cannot fix.
  config.ycsb.mirror_keyspace = true;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(8);   // migrations settle in warmup
  config.driver.measure = SecToMicros(20);
  config.sharding = elastic;
  config.shard_chunks_per_source = 8;
  config.balancer.interval = MsToMicros(300);
  config.balancer.min_heat = 10;  // low bar: the rtt-gain test gates moves
  config.balancer.min_rtt_gain = MsToMicros(40);
  config.balancer.max_concurrent = 2;
  config.balancer.migration_timeout = SecToMicros(5);

  Row row;
  row.result = RunTracked(config);
  row.p50_ms = MicrosToMs(row.result.run.latency.P50());
  const auto& dm = row.result.dm;
  row.dist_ratio = dm.committed == 0
                       ? 0.0
                       : static_cast<double>(dm.committed_distributed) /
                             static_cast<double>(dm.committed);
  return row;
}

// Skew-within-chunk: one huge preloaded chunk per source, hot zipf head
// inside the far one. `split` toggles the balancer's online range split;
// without it the only move available is the whole 60k-record chunk, whose
// destination ingest (migration_apply_cost per record) cannot finish
// inside the migration timeout — boundaries stay frozen, exactly PR 3's
// gap.
Row RunSkewWithinChunk(bool split) {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.workload = workload::WorkloadKind::kYcsb;
  config.ycsb.theta = 1.2;  // tight hot head inside the chunk
  config.ycsb.records_per_node = 60000;
  config.ycsb.distributed_ratio = 0.3;
  config.ycsb.mirror_keyspace = true;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(8);
  config.driver.measure = SecToMicros(20);
  config.sharding = true;
  config.shard_chunks_per_source = 1;  // chunk == partition: max skew-in-chunk
  config.preload = true;
  config.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_apply_cost = 30;  // 60k records => 1.8 s ingest
  };
  config.balancer.interval = MsToMicros(300);
  config.balancer.min_heat = 10;
  config.balancer.min_rtt_gain = MsToMicros(40);
  config.balancer.max_concurrent = 2;
  config.balancer.migration_timeout = SecToMicros(1);
  config.balancer.split_enabled = split;

  Row row;
  row.result = RunTracked(config);
  row.p50_ms = MicrosToMs(row.result.run.latency.P50());
  const auto& dm = row.result.dm;
  row.dist_ratio = dm.committed == 0
                       ? 0.0
                       : static_cast<double>(dm.committed_distributed) /
                             static_cast<double>(dm.committed);
  return row;
}

// Large-range streaming: one huge preloaded chunk per source, whole-chunk
// migration allowed to complete (no split, generous timeout). Exercises
// the chunked stream + credit window end to end at bench scale.
constexpr uint64_t kStreamWindow = 4;
constexpr uint64_t kStreamChunkRecords = 1024;

Row RunLargeRangeStreaming() {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.workload = workload::WorkloadKind::kYcsb;
  config.ycsb.theta = 1.2;
  config.ycsb.records_per_node = 60000;
  config.ycsb.distributed_ratio = 0.3;
  config.ycsb.mirror_keyspace = true;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(8);
  config.driver.measure = SecToMicros(20);
  config.sharding = true;
  config.shard_chunks_per_source = 1;  // one oversized range per source
  config.preload = true;
  config.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_apply_cost = 10;  // 60k records => 600 ms total ingest
    ds->migration_chunk_records = kStreamChunkRecords;  // ~59 chunks
    ds->migration_stream_window = kStreamWindow;
  };
  config.balancer.interval = MsToMicros(300);
  config.balancer.min_heat = 10;
  config.balancer.min_rtt_gain = MsToMicros(40);
  config.balancer.max_concurrent = 2;
  config.balancer.migration_timeout = SecToMicros(8);  // streaming fits
  config.balancer.split_enabled = false;  // force the whole-range move

  Row row;
  row.result = RunTracked(config);
  row.p50_ms = MicrosToMs(row.result.run.latency.P50());
  const auto& dm = row.result.dm;
  row.dist_ratio = dm.committed == 0
                       ? 0.0
                       : static_cast<double>(dm.committed_distributed) /
                             static_cast<double>(dm.committed);
  return row;
}

void PrintDetail(double theta, const char* label, const Row& row) {
  std::printf(
      "%5.2f %-9s tput=%8.1f txn/s  p50=%8.1f ms  p99=%9.1f ms  "
      "dist=%5.1f%%  abort=%5.1f%%  epoch=%llu\n",
      theta, label, row.result.Tps(), row.p50_ms,
      MicrosToMs(row.result.run.latency.P99()), 100.0 * row.dist_ratio,
      100.0 * row.result.AbortRate(),
      static_cast<unsigned long long>(row.result.dm.shard_map_epoch));
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintHeader(
      "Rebalance sweep (GeoTP, mirrored YCSB: hot keys on the 251ms node)");
  std::printf("%5s %-9s\n", "theta", "placement");

  double headline_p50_gain = 0.0;
  double headline_dist_gain = 0.0;
  for (double theta : {0.9, 1.2}) {
    const Row fixed = RunOne(theta, /*elastic=*/false);
    PrintDetail(theta, "static", fixed);
    const Row elastic = RunOne(theta, /*elastic=*/true);
    PrintDetail(theta, "elastic", elastic);
    if (theta == 0.9) {
      headline_p50_gain =
          fixed.p50_ms <= 0 ? 0.0 : 1.0 - elastic.p50_ms / fixed.p50_ms;
      headline_dist_gain =
          fixed.dist_ratio <= 0
              ? 0.0
              : 1.0 - elastic.dist_ratio / fixed.dist_ratio;
    }
  }

  std::printf(
      "summary: theta=0.9 p50 improvement=%.1f%%  distributed-ratio "
      "improvement=%.1f%% (target >= 20%% on either)\n",
      100.0 * headline_p50_gain, 100.0 * headline_dist_gain);
  std::printf(
      "\nSkew-within-chunk (theta 1.2 head inside one preloaded 60k-record "
      "chunk,\nwhole-chunk ingest 1.8s vs 1s migration timeout):\n");
  std::printf("%5s %-9s\n", "theta", "split");
  const Row no_split = RunSkewWithinChunk(/*split=*/false);
  PrintDetail(1.2, "no-split", no_split);
  const Row with_split = RunSkewWithinChunk(/*split=*/true);
  PrintDetail(1.2, "split", with_split);
  const double split_p50_gain =
      no_split.p50_ms <= 0 ? 0.0 : 1.0 - with_split.p50_ms / no_split.p50_ms;
  std::printf(
      "summary: skew-within-chunk p50 no-split=%.1f ms  split=%.1f ms  "
      "improvement=%.1f%% (target >= 20%%)\n",
      no_split.p50_ms, with_split.p50_ms, 100.0 * split_p50_gain);

  std::printf(
      "\nLarge-range streaming (oversized 60k-record chunk, whole-range "
      "move,\nchunked snapshot under a %llu-chunk credit window):\n",
      static_cast<unsigned long long>(kStreamWindow));
  const Row streaming = RunLargeRangeStreaming();
  PrintDetail(1.2, "stream", streaming);
  const auto& mig = streaming.result.migration;
  std::printf(
      "summary: streaming chunks=%llu records=%llu peak_unacked=%llu "
      "(window %llu) retransmits=%llu streams_completed=%llu "
      "cutovers_reported=%llu map_epoch=%llu\n",
      static_cast<unsigned long long>(mig.snapshot_chunks_sent),
      static_cast<unsigned long long>(mig.snapshot_records_sent),
      static_cast<unsigned long long>(mig.peak_unacked_chunks),
      static_cast<unsigned long long>(kStreamWindow),
      static_cast<unsigned long long>(mig.chunk_retransmits),
      static_cast<unsigned long long>(mig.streams_completed),
      static_cast<unsigned long long>(mig.cutovers_reported),
      static_cast<unsigned long long>(streaming.result.dm.shard_map_epoch));
  const double wan_ratio =
      mig.wan_bytes_wire == 0
          ? 0.0
          : static_cast<double>(mig.wan_bytes_raw) /
                static_cast<double>(mig.wan_bytes_wire);
  std::printf(
      "wan: raw_bytes=%llu wire_bytes=%llu ratio=%.2f chunks_declined=%llu\n",
      static_cast<unsigned long long>(mig.wan_bytes_raw),
      static_cast<unsigned long long>(mig.wan_bytes_wire), wan_ratio,
      static_cast<unsigned long long>(mig.chunks_declined));

  const bool sweep_pass =
      headline_p50_gain >= 0.20 || headline_dist_gain >= 0.20;
  const bool split_pass = split_p50_gain >= 0.20;
  // The oversized move must complete (epoch advanced past 0) by streaming
  // in bounded chunks, with the source's stream memory capped by the
  // receiver's credit window.
  const bool stream_pass = streaming.result.dm.shard_map_epoch >= 1 &&
                           mig.streams_completed >= 1 &&
                           mig.snapshot_chunks_sent >= 16 &&
                           mig.peak_unacked_chunks <= kStreamWindow;
  const bool pass = sweep_pass && split_pass && stream_pass;
  PrintSimWallSummary();
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  std::printf(
      "\nExpected shape: under static placement every hot transaction pays\n"
      "251 ms round trips; the balancer co-locates the hot chunks with the\n"
      "DM region within the warmup and the measured p50 collapses toward\n"
      "the local RTT, with fewer multi-source transactions. In the\n"
      "skew-within-chunk scenario the no-split balancer keeps attempting\n"
      "(and timing out on) the oversized whole-chunk move, so the hot head\n"
      "stays remote; with online split the hot sub-range is carved out\n"
      "within the warmup and migrated in one ~100 ms ingest. In the\n"
      "streaming scenario the same oversized range is allowed to move\n"
      "whole: the snapshot crosses as dozens of bounded chunks, the\n"
      "destination's credit window backpressures the source (peak unacked\n"
      "chunks <= window), and the migration still completes inside the\n"
      "relaxed timeout.\n");
  return pass ? 0 : 1;
}
