// Figure 14: impact of transaction length (a: 5..25 ops, one round, MC)
// and of interactive round count (b: LC, c: MC; 1..6 rounds) on SSP vs
// GeoTP.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 14a — transaction length (medium contention, dr=0.2)");
  std::printf("%-10s %10s %10s\n", "ops/txn", "SSP", "GeoTP");
  for (int len : {5, 10, 15, 20, 25}) {
    double tput[2];
    int i = 0;
    for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
      ExperimentConfig config = DefaultConfig();
      config.system = system;
      config.ycsb.theta = 0.9;
      config.ycsb.distributed_ratio = 0.2;
      config.ycsb.ops_per_txn = len;
      tput[i++] = RunTracked(config).Tps();
    }
    std::printf("%-10d %10.1f %10.1f\n", len, tput[0], tput[1]);
    std::fflush(stdout);
  }

  for (double theta : {0.3, 0.9}) {
    PrintHeader(std::string("Fig. 14") + (theta < 0.5 ? "b" : "c") +
                " — interaction rounds (" +
                (theta < 0.5 ? "low" : "medium") + " contention)");
    std::printf("%-10s %10s %10s\n", "rounds", "SSP", "GeoTP");
    for (int rounds : {1, 2, 3, 4, 5, 6}) {
      double tput[2];
      int i = 0;
      for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
        ExperimentConfig config = DefaultConfig();
        config.system = system;
        config.ycsb.theta = theta;
        config.ycsb.distributed_ratio = 0.2;
        config.ycsb.ops_per_txn = 6;  // divisible into up to 6 rounds
        config.ycsb.rounds = rounds;
        tput[i++] = RunTracked(config).Tps();
      }
      std::printf("%-10d %10.1f %10.1f\n", rounds, tput[0], tput[1]);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 14): length hurts mildly (paper: -19%%\n"
      "GeoTP / -41%% SSP from 5 to 25 ops); round count hurts much more\n"
      "(each round is a WAN interaction); at 6 rounds GeoTP keeps ~1.5x\n"
      "(LC) and ~3.4x (MC) over SSP — the decentralized-prepare saving\n"
      "shrinks but scheduling gains persist.\n");
  return 0;
}
