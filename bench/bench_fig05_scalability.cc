// Figure 5: overall throughput vs number of client terminals, YCSB (a)
// and TPC-C (b), for SSP, SSP(local), ScalarDB, ScalarDB+ and GeoTP.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

void Sweep(workload::WorkloadKind workload, const char* title) {
  PrintHeader(title);
  const std::vector<int> terminals = {16, 32, 64, 128, 192, 256, 352};
  std::printf("%-14s", "system");
  for (int t : terminals) std::printf(" %8d", t);
  std::printf("   (txn/s per terminal count)\n");
  for (SystemKind system :
       {SystemKind::kSSP, SystemKind::kSSPLocal, SystemKind::kScalarDb,
        SystemKind::kScalarDbPlus, SystemKind::kGeoTP}) {
    std::printf("%-14s", Label(system).c_str());
    for (int t : terminals) {
      ExperimentConfig config = DefaultConfig();
      config.system = system;
      config.workload = workload;
      config.ycsb.theta = 0.9;  // medium contention (paper default)
      config.ycsb.distributed_ratio = 0.2;
      config.tpcc.distributed_ratio = 0.2;
      config.driver.terminals = t;
      const auto result = RunTracked(config);
      std::printf(" %8.1f", result.Tps());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 5): GeoTP > SSP(local) > SSP > ScalarDB;\n"
      "ScalarDB+ well above ScalarDB; peak-then-decline as terminals grow.\n");
}

}  // namespace

int main() {
  Sweep(workload::WorkloadKind::kYcsb, "Fig. 5a — scalability, YCSB");
  Sweep(workload::WorkloadKind::kTpcc, "Fig. 5b — scalability, TPC-C");
  return 0;
}
