// Figure 8: latency CDFs at 60% distributed transactions under low /
// medium / high contention for SSP, SSP(local) and GeoTP. Prints selected
// CDF points (P10..P99.9) plus the "turning point" — the fraction of
// transactions unaffected by distributed-transaction latency (latency
// below ~2 local RTTs).
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  for (double theta : {0.3, 0.9, 1.5}) {
    PrintHeader("Fig. 8 — latency distribution, theta=" +
                std::to_string(theta) + ", dr=0.6");
    std::printf("%-14s %9s %9s %9s %9s %9s %9s %12s\n", "system", "p10(ms)",
                "p25", "p50", "p90", "p99", "p99.9", "turning-pt");
    for (SystemKind system :
         {SystemKind::kSSP, SystemKind::kSSPLocal, SystemKind::kGeoTP}) {
      ExperimentConfig config = DefaultConfig();
      config.system = system;
      config.ycsb.theta = theta;
      config.ycsb.distributed_ratio = 0.6;
      const auto r = RunTracked(config);
      // Turning point: cumulative fraction of txns completing within
      // ~60ms (fast local commits, unaffected by remote links).
      double turning = 0.0;
      for (const auto& [lat, frac] : r.run.latency.Cdf()) {
        if (lat > MsToMicros(60)) break;
        turning = frac;
      }
      std::printf("%-14s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %11.2f\n",
                  Label(system).c_str(),
                  MicrosToMs(r.run.latency.Percentile(10)),
                  MicrosToMs(r.run.latency.Percentile(25)),
                  MicrosToMs(r.run.latency.P50()),
                  MicrosToMs(r.run.latency.Percentile(90)),
                  MicrosToMs(r.run.latency.P99()),
                  MicrosToMs(r.run.latency.P999()), turning);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 8): at LC all systems keep a large\n"
      "fraction of fast transactions; at MC the SSP turning point drops\n"
      "(~0.2) while GeoTP holds (~0.4) with p99 up to 35.9%% lower; at HC\n"
      "SSP's turning point collapses to ~0 while GeoTP degrades smoothly.\n");
  return 0;
}
