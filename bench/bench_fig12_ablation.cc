// Figure 12: ablation of the three optimizations over the skew factor.
// x: theta 0.1..1.7; y: throughput, p99 latency, abort rate; systems:
// SSP, GeoTP(O1), GeoTP(O1~O2), GeoTP(O1~O3). 50% distributed txns.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  const std::vector<double> thetas = {0.1, 0.3, 0.5, 0.7, 0.9,
                                      1.1, 1.3, 1.5, 1.7};
  const std::vector<SystemKind> systems = {
      SystemKind::kSSP, SystemKind::kGeoTPO1, SystemKind::kGeoTPO1O2,
      SystemKind::kGeoTP};

  struct Cell { double tps, p99, abort; };
  std::vector<std::vector<Cell>> grid(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    for (double theta : thetas) {
      ExperimentConfig config = DefaultConfig();
      config.system = systems[s];
      config.ycsb.theta = theta;
      config.ycsb.distributed_ratio = 0.5;
      const auto r = RunTracked(config);
      grid[s].push_back(Cell{r.Tps(), r.P99LatencyMs(),
                             100.0 * r.AbortRate()});
    }
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");

  auto print_metric = [&](const char* title, auto pick) {
    PrintHeader(std::string("Fig. 12 — ") + title);
    std::printf("%-14s", "system\\theta");
    for (double theta : thetas) std::printf(" %8.1f", theta);
    std::printf("\n");
    for (size_t s = 0; s < systems.size(); ++s) {
      std::printf("%-14s", Label(systems[s]).c_str());
      for (const Cell& cell : grid[s]) std::printf(" %8.1f", pick(cell));
      std::printf("\n");
    }
  };
  print_metric("throughput (txn/s)", [](const Cell& c) { return c.tps; });
  print_metric("p99 latency (ms)", [](const Cell& c) { return c.p99; });
  print_metric("abort rate (%)", [](const Cell& c) { return c.abort; });

  std::printf(
      "\nExpected shape (paper Fig. 12): at low skew O1 captures nearly\n"
      "all the gain; at medium skew O2 adds concurrency; at high skew O1\n"
      "alone collapses with SSP while O1~O2 holds and O1~O3 keeps the\n"
      "lowest p99 and near-lowest abort rate (paper: up to 17.7x SSP,\n"
      "abort -32.1pp, p99 -84.3%%).\n");
  return 0;
}
