// Shared helpers for the figure/table regeneration benches. Every bench is
// a standalone binary printing the same rows/series the paper reports;
// EXPERIMENTS.md records paper-vs-measured for each.
#ifndef GEOTP_BENCH_BENCH_COMMON_H_
#define GEOTP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "workload/runner.h"

namespace geotp {
namespace bench {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::RunExperiment;
using workload::SystemKind;
using workload::SystemName;

/// Default measurement windows: long enough for stable numbers, short
/// enough that a full bench suite finishes in minutes.
inline ExperimentConfig DefaultConfig() {
  ExperimentConfig config;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(4);
  config.driver.measure = SecToMicros(24);
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, const ExperimentResult& r) {
  std::printf(
      "%-24s  tput=%8.1f txn/s  mean=%9.1f ms  p99=%10.1f ms  "
      "abort=%5.1f%%\n",
      label.c_str(), r.Tps(), r.MeanLatencyMs(), r.P99LatencyMs(),
      100.0 * r.AbortRate());
}

inline std::string Label(SystemKind system) { return SystemName(system); }

}  // namespace bench
}  // namespace geotp

#endif  // GEOTP_BENCH_BENCH_COMMON_H_
