// Shared helpers for the figure/table regeneration benches. Every bench is
// a standalone binary printing the same rows/series the paper reports;
// EXPERIMENTS.md records paper-vs-measured for each.
#ifndef GEOTP_BENCH_BENCH_COMMON_H_
#define GEOTP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "workload/runner.h"

namespace geotp {
namespace bench {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::RunExperiment;
using workload::SystemKind;
using workload::SystemName;

/// Default measurement windows: long enough for stable numbers, short
/// enough that a full bench suite finishes in minutes.
inline ExperimentConfig DefaultConfig() {
  ExperimentConfig config;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(4);
  config.driver.measure = SecToMicros(24);
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, const ExperimentResult& r) {
  std::printf(
      "%-24s  tput=%8.1f txn/s  mean=%9.1f ms  p99=%10.1f ms  "
      "abort=%5.1f%%\n",
      label.c_str(), r.Tps(), r.MeanLatencyMs(), r.P99LatencyMs(),
      100.0 * r.AbortRate());
}

inline std::string Label(SystemKind system) { return SystemName(system); }

/// Process-wide accumulator for the host wall-clock cost of every tracked
/// simulation in a bench binary. The acceptance benches print the summary
/// line just before their acceptance verdict, so the committed
/// bench/out/BENCH_*.json snapshots record what the sim run itself cost
/// per committed transaction — the counterpart to the loopback smoke's
/// measured-vs-predicted comparison.
struct SimWallTotals {
  double seconds = 0.0;
  uint64_t committed = 0;
};

inline SimWallTotals& SimWall() {
  static SimWallTotals totals;
  return totals;
}

inline ExperimentResult RunTracked(const ExperimentConfig& config) {
  ExperimentResult result = RunExperiment(config);
  SimWall().seconds += result.wall_seconds;
  SimWall().committed += result.run.committed;
  return result;
}

inline void PrintSimWallSummary() {
  const SimWallTotals& t = SimWall();
  std::printf("sim-wall: %.2f s host time, %llu committed txns, %.1f "
              "us/committed-txn\n",
              t.seconds, static_cast<unsigned long long>(t.committed),
              t.committed == 0 ? 0.0 : t.seconds * 1e6 / t.committed);
}

}  // namespace bench
}  // namespace geotp

#endif  // GEOTP_BENCH_BENCH_COMMON_H_
