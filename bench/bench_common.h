// Shared helpers for the figure/table regeneration benches. Every bench is
// a standalone binary printing the same rows/series the paper reports;
// EXPERIMENTS.md records paper-vs-measured for each.
#ifndef GEOTP_BENCH_BENCH_COMMON_H_
#define GEOTP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "workload/runner.h"

namespace geotp {
namespace bench {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::SystemKind;
using workload::SystemName;
// NOTE: benches call RunTracked (below), not workload::RunExperiment,
// so every simulation gets sim-wall accounting and GEOTP_TRACE support.

/// Default measurement windows: long enough for stable numbers, short
/// enough that a full bench suite finishes in minutes.
inline ExperimentConfig DefaultConfig() {
  ExperimentConfig config;
  config.driver.terminals = 64;
  config.driver.warmup = SecToMicros(4);
  config.driver.measure = SecToMicros(24);
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, const ExperimentResult& r) {
  std::printf(
      "%-24s  tput=%8.1f txn/s  mean=%9.1f ms  p99=%10.1f ms  "
      "abort=%5.1f%%\n",
      label.c_str(), r.Tps(), r.MeanLatencyMs(), r.P99LatencyMs(),
      100.0 * r.AbortRate());
}

inline std::string Label(SystemKind system) { return SystemName(system); }

/// Process-wide accumulator for the host wall-clock cost of every tracked
/// simulation in a bench binary. The acceptance benches print the summary
/// line just before their acceptance verdict, so the committed
/// bench/out/BENCH_*.json snapshots record what the sim run itself cost
/// per committed transaction — the counterpart to the loopback smoke's
/// measured-vs-predicted comparison.
struct SimWallTotals {
  double seconds = 0.0;
  uint64_t committed = 0;
};

inline SimWallTotals& SimWall() {
  static SimWallTotals totals;
  return totals;
}

/// Observability opt-in: GEOTP_TRACE=1 (scripts/run_bench.sh --trace)
/// samples every transaction, collects the metrics registry, and enables
/// the executor profiler; PrintSimWallSummary then writes the artifacts
/// next to the bench snapshots. Off (the default) nothing is touched, so
/// the committed BENCH_*.json numbers stay bit-identical.
inline bool TraceRequested() {
  const char* env = std::getenv("GEOTP_TRACE");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

/// Metrics snapshot of the most recent traced run (the registry's gauges
/// die with the experiment's nodes; the JSON survives here).
inline std::string& LastMetricsJson() {
  static std::string json;
  return json;
}

inline void DumpObsArtifacts();

/// Every bench simulation funnels through here (the bench namespace
/// shadows workload::RunExperiment with this wrapper): sim-wall
/// accounting always, plus — under GEOTP_TRACE — full sampling, metrics
/// collection, the profiler, and an atexit artifact dump so any bench
/// binary works with scripts/run_bench.sh --trace.
inline ExperimentResult RunTracked(const ExperimentConfig& config) {
  ExperimentConfig run_config = config;
  if (TraceRequested()) {
    run_config.trace_sample_rate = 1.0;
    run_config.collect_metrics = true;
    obs::GlobalProfiler().Enable();
    // Touch every function-local static DumpObsArtifacts reads BEFORE
    // registering the atexit hook: atexit handlers and static
    // destructors unwind as one LIFO stack, so anything first
    // constructed after the registration would already be destroyed
    // when the dump runs.
    obs::GlobalTracer();
    LastMetricsJson();
    static const bool registered = []() {
      std::atexit([]() { DumpObsArtifacts(); });
      return true;
    }();
    (void)registered;
  }
  ExperimentResult result = workload::RunExperiment(run_config);
  if (TraceRequested()) LastMetricsJson() = result.metrics_json;
  SimWall().seconds += result.wall_seconds;
  SimWall().committed += result.run.committed;
  return result;
}

/// Writes trace/metrics/profiler artifacts for a traced bench run:
/// <prefix>_trace.json (Chrome trace-event, Perfetto loadable — the LAST
/// experiment's spans; each run resets the tracer), <prefix>_slowest.txt,
/// <prefix>_metrics.json, <prefix>_profile.json (cumulative handler/queue
/// timings across every run of the binary). Prefix from GEOTP_TRACE_OUT,
/// default "bench/out/trace".
inline void DumpObsArtifacts() {
  const char* env = std::getenv("GEOTP_TRACE_OUT");
  const std::string prefix = env != nullptr && env[0] != '\0'
                                 ? env
                                 : "bench/out/trace";
  obs::Tracer& tracer = obs::GlobalTracer();
  {
    std::ofstream out(prefix + "_trace.json");
    tracer.ExportChromeTrace(out, /*pid=*/0);
  }
  {
    std::ofstream out(prefix + "_slowest.txt");
    out << obs::SlowestTracesReport(tracer.Snapshot(), /*k=*/8);
  }
  {
    std::ofstream out(prefix + "_metrics.json");
    out << LastMetricsJson();
  }
  {
    std::ofstream out(prefix + "_profile.json");
    out << obs::GlobalProfiler().ReportJson();
  }
  std::printf("obs artifacts: %s_{trace,metrics,profile}.json (%zu spans)\n",
              prefix.c_str(), tracer.span_count());
}

inline void PrintSimWallSummary() {
  const SimWallTotals& t = SimWall();
  std::printf("sim-wall: %.2f s host time, %llu committed txns, %.1f "
              "us/committed-txn\n",
              t.seconds, static_cast<unsigned long long>(t.committed),
              t.committed == 0 ? 0.0 : t.seconds * 1e6 / t.committed);
  // Trace artifacts (GEOTP_TRACE) are written by RunTracked's atexit
  // hook, after the final experiment's spans are in.
}

}  // namespace bench
}  // namespace geotp

#endif  // GEOTP_BENCH_BENCH_COMMON_H_
