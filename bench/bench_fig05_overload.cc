// Figure 5 extension: goodput past the saturation knee, with and without
// overload control. The paper's scalability curves (Fig. 5) peak around a
// few hundred terminals and then *decline* — congestion collapse. This
// bench pushes the sweep well past the knee (up to 1024 terminals) and
// shows that admission control + shedding + client backoff hold goodput
// flat where the uncontrolled system decays.
//
// Acceptance:
//   * controlled goodput at >= 2x the saturating terminal count stays
//     within 90% of the controlled peak (goodput survives saturation);
//   * two-tenant 10:1 skew: the hot tenant ends up at its weighted share
//     of goodput (+-10%), and the well-behaved tenant's p50 stays within
//     2x of what it sees running alone on the same controlled system.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

constexpr size_t kSweepBudget = 192;    // DM in-flight budget, load sweep
constexpr size_t kFairBudget = 64;      // budget for the two-tenant runs
constexpr size_t kDispatchBound = 256;  // per-source dispatch-queue bound
constexpr uint64_t kRunQueueBound = 48; // per-source run-queue bound

ExperimentConfig OverloadBase() {
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.ycsb.theta = 0.9;
  config.ycsb.distributed_ratio = 0.2;
  config.driver.warmup = SecToMicros(2);
  config.driver.measure = SecToMicros(10);
  return config;
}

void EnableControl(ExperimentConfig* config, size_t budget) {
  config->driver.retry_budget = 16;
  config->driver.retry_backoff_max = MsToMicros(100);
  config->dm_tweak = [budget](middleware::MiddlewareConfig* dm) {
    dm->overload.max_inflight = budget;
    dm->overload.max_dispatch_queue = kDispatchBound;
  };
  config->ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->max_run_queue = kRunQueueBound;
  };
}

struct SweepPoint {
  int terminals = 0;
  double goodput = 0.0;  // committed txn/s
  double offered = 0.0;  // ~new-admission requests/s at the DM
  ExperimentResult result;
};

SweepPoint RunPoint(int terminals, bool controlled) {
  ExperimentConfig config = OverloadBase();
  config.driver.terminals = terminals;
  if (controlled) EnableControl(&config, kSweepBudget);
  SweepPoint point;
  point.terminals = terminals;
  point.result = RunTracked(config);
  const double secs = MicrosToMs(config.driver.measure) / 1000.0;
  point.goodput = point.result.Tps();
  // Every submission ends in a commit, a user-visible abort, or another
  // attempt; their sum approximates the new-admission arrival rate.
  point.offered = static_cast<double>(point.result.run.committed +
                                      point.result.run.aborted +
                                      point.result.run.retries) /
                  secs;
  return point;
}

void PrintPoint(const SweepPoint& p, bool controlled) {
  std::printf("%8d %10.1f %10.1f %7.1f%% %9llu %9llu %9llu\n", p.terminals,
              p.offered, p.goodput, 100.0 * p.result.AbortRate(),
              static_cast<unsigned long long>(p.result.run.sheds),
              static_cast<unsigned long long>(p.result.run.retries),
              static_cast<unsigned long long>(
                  controlled ? p.result.run_queue_rejections : 0));
  std::fflush(stdout);
}

}  // namespace

int main() {
  const std::vector<int> terminals = {64, 128, 256, 512, 1024};

  PrintHeader("Fig. 5+ — goodput vs offered load past the knee (GeoTP, YCSB)");
  std::printf("%-12s\n", "UNCONTROLLED (no admission, no shedding)");
  std::printf("%8s %10s %10s %8s %9s %9s %9s\n", "term", "offered/s",
              "goodput/s", "abort", "sheds", "retries", "rq_rej");
  std::vector<SweepPoint> off;
  for (int t : terminals) {
    off.push_back(RunPoint(t, /*controlled=*/false));
    PrintPoint(off.back(), false);
  }

  std::printf("%-12s\n", "CONTROLLED (admission + backoff + bounded queues)");
  std::printf("%8s %10s %10s %8s %9s %9s %9s\n", "term", "offered/s",
              "goodput/s", "abort", "sheds", "retries", "rq_rej");
  std::vector<SweepPoint> on;
  for (int t : terminals) {
    on.push_back(RunPoint(t, /*controlled=*/true));
    PrintPoint(on.back(), true);
  }

  // Saturation knee = the UNCONTROLLED sweep's peak-goodput terminal
  // count (where adding terminals stops helping). "Goodput survives
  // saturation" = at 2x that offered load and beyond, the controlled
  // system still delivers >= 90% of the best goodput it achieved up to
  // the knee. (The uncontrolled system fails this by construction: its
  // post-knee points decay toward zero.)
  size_t knee_idx = 0;
  for (size_t i = 1; i < off.size(); ++i) {
    if (off[i].goodput > off[knee_idx].goodput) knee_idx = i;
  }
  const int knee = off[knee_idx].terminals;
  double peak = 0.0;  // controlled peak at or before the knee
  double worst_past_knee = -1.0;
  for (const SweepPoint& p : on) {
    if (p.terminals <= knee) peak = std::max(peak, p.goodput);
    if (p.terminals >= 2 * knee) {
      worst_past_knee = worst_past_knee < 0
                            ? p.goodput
                            : std::min(worst_past_knee, p.goodput);
    }
  }
  const bool goodput_pass =
      peak > 0 && worst_past_knee >= 0.90 * peak;
  double uncontrolled_worst = off.back().goodput;
  for (const SweepPoint& p : off) {
    if (p.terminals >= 2 * knee) {
      uncontrolled_worst = std::min(uncontrolled_worst, p.goodput);
    }
  }
  std::printf(
      "summary: saturation knee at %d terminals (uncontrolled peak "
      "%.1f txn/s, decaying to %.1f past 2x); controlled pre-knee "
      "peak=%.1f txn/s, worst goodput at >=2x knee=%.1f txn/s "
      "(%.1f%% of peak, target >= 90%%)\n",
      knee, off[knee_idx].goodput, uncontrolled_worst, peak,
      worst_past_knee, peak > 0 ? 100.0 * worst_past_knee / peak : 0.0);

  PrintHeader("Two-tenant fairness under 10:1 skew (equal weights)");
  // Baseline: the well-behaved tenant alone on the controlled system.
  ExperimentConfig solo = OverloadBase();
  EnableControl(&solo, kFairBudget);
  solo.driver.tenant_terminals = {0, 32};  // tenant 1 only
  const auto solo_result = RunTracked(solo);
  const double solo_p50 = MicrosToMs(solo_result.run.latency.P50());

  // Contended: tenant 0 offers 10x the terminals of tenant 1.
  ExperimentConfig duo = OverloadBase();
  EnableControl(&duo, kFairBudget);
  duo.driver.tenant_terminals = {320, 32};
  const auto duo_result = RunTracked(duo);
  const auto t0 = duo_result.tenants.count(0) ? duo_result.tenants.at(0)
                                              : workload::TenantStats{};
  const auto t1 = duo_result.tenants.count(1) ? duo_result.tenants.at(1)
                                              : workload::TenantStats{};
  const double total_committed =
      static_cast<double>(t0.committed + t1.committed);
  const double hot_share =
      total_committed > 0 ? static_cast<double>(t0.committed) / total_committed
                          : 0.0;
  const double t1_p50 = MicrosToMs(t1.latency.P50());
  std::printf(
      "tenant0 (hot, 320 term): committed=%llu sheds=%llu aborted=%llu\n",
      static_cast<unsigned long long>(t0.committed),
      static_cast<unsigned long long>(t0.sheds),
      static_cast<unsigned long long>(t0.aborted));
  std::printf(
      "tenant1 (well-behaved, 32 term): committed=%llu sheds=%llu "
      "p50=%.1f ms (solo p50=%.1f ms)\n",
      static_cast<unsigned long long>(t1.committed),
      static_cast<unsigned long long>(t1.sheds), t1_p50, solo_p50);
  // Equal weights: the hot tenant is capped at ~half the goodput.
  const bool share_pass = std::abs(hot_share - 0.5) <= 0.10;
  const bool latency_pass = solo_p50 > 0 && t1_p50 <= 2.0 * solo_p50;
  std::printf(
      "summary: hot-tenant goodput share=%.1f%% (target 50%% +-10); "
      "well-behaved p50 ratio=%.2fx (target <= 2x)\n",
      100.0 * hot_share, solo_p50 > 0 ? t1_p50 / solo_p50 : 0.0);

  const bool pass = goodput_pass && share_pass && latency_pass;
  PrintSimWallSummary();
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  std::printf(
      "\nExpected shape: uncontrolled goodput peaks near the knee and\n"
      "decays as every extra terminal adds lock contention and aborted\n"
      "work; controlled goodput reaches the budget's ceiling and stays\n"
      "there, with the surplus offered load absorbed as cheap sheds and\n"
      "client backoff instead of wasted execution.\n");
  return 0;
}
