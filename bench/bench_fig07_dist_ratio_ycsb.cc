// Figure 7: throughput and average latency vs percentage of distributed
// transactions, under low/medium/high contention YCSB, for SSP, GeoTP,
// Chiller and QURO.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  const std::vector<double> ratios = {0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<SystemKind> systems = {
      SystemKind::kSSP, SystemKind::kQuro, SystemKind::kChiller,
      SystemKind::kGeoTP};
  struct Level { const char* name; double theta; };
  for (Level level : {Level{"low", 0.3}, Level{"medium", 0.9},
                      Level{"high", 1.5}}) {
    PrintHeader(std::string("Fig. 7 — ") + level.name +
                " contention: throughput (txn/s) / mean latency (ms)");
    std::printf("%-14s", "system \\ dr");
    for (double dr : ratios) std::printf("        %4.1f       ", dr);
    std::printf("\n");
    for (SystemKind system : systems) {
      std::printf("%-14s", Label(system).c_str());
      for (double dr : ratios) {
        ExperimentConfig config = DefaultConfig();
        config.system = system;
        config.ycsb.theta = level.theta;
        config.ycsb.distributed_ratio = dr;
        const auto r = RunTracked(config);
        std::printf("  %7.1f/%-8.1f", r.Tps(), r.MeanLatencyMs());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): GeoTP >= Chiller > QURO >= SSP at\n"
      "every ratio; throughput decreases with dr; GeoTP's margin widens\n"
      "with contention (paper: up to 8.9x over SSP, 1.6x over Chiller).\n");
  return 0;
}
