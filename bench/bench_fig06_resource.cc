// Figure 6: resource utilisation and per-transaction breakdown.
//
// 6a/6b (CPU / memory of a Java process) cannot be reproduced in a
// discrete-event simulation; we report the simulator-native proxies
// documented in DESIGN.md: coordination work per committed transaction
// (events + messages — CPU proxy) and metadata bytes (memory proxy).
// 6c (the per-phase latency breakdown of one transaction lifecycle) is
// reproduced directly.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 6a/6b — resource proxies (SSP vs GeoTP, YCSB MC)");
  std::printf("%-12s %16s %16s %16s %14s %14s\n", "system", "events/commit",
              "msgs/commit", "footprint bytes", "wal entries", "fsyncs/commit");
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
    ExperimentConfig config = DefaultConfig();
    config.system = system;
    config.ycsb.theta = 0.9;
    config.ycsb.distributed_ratio = 0.2;
    const auto r = RunTracked(config);
    const double commits = static_cast<double>(
        r.run.committed > 0 ? r.run.committed : 1);
    std::printf("%-12s %16.1f %16.1f %16zu %14llu %14.2f\n",
                Label(system).c_str(),
                static_cast<double>(r.events_processed) / commits,
                static_cast<double>(r.network_messages) / commits,
                r.footprint_bytes,
                static_cast<unsigned long long>(r.wal_entries),
                r.FsyncsPerCommit());
  }
  std::printf(
      "Expected shape: GeoTP does LESS coordination per committed txn\n"
      "(~30%% CPU-efficiency win in the paper) while holding extra hot-\n"
      "record metadata (the paper's ~300MB memory delta).\n");

  PrintHeader("Fig. 6c — per-transaction phase breakdown (GeoTP, YCSB MC)");
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.ycsb.theta = 0.9;
  config.ycsb.distributed_ratio = 0.2;
  const auto r = RunTracked(config);
  std::printf("%-12s %10s %10s %10s\n", "phase", "mean", "p50", "p99");
  for (int p = 0; p < static_cast<int>(metrics::TxnPhase::kNumPhases); ++p) {
    const auto phase = static_cast<metrics::TxnPhase>(p);
    std::printf("%-12s %8.2fms %8.2fms %8.2fms\n", metrics::TxnPhaseName(phase),
                r.dm.breakdown.MeanMs(phase), r.dm.breakdown.P50Ms(phase),
                r.dm.breakdown.P99Ms(phase));
  }
  std::printf("mean end-to-end latency: %.1f ms\n", r.MeanLatencyMs());
  // Shard-map visibility: migrations (if any) show up in the perf
  // trajectory of every bench JSON that reports DM stats.
  std::printf("shard_map_epoch=%llu shard_redirects=%llu\n",
              static_cast<unsigned long long>(r.dm.shard_map_epoch),
              static_cast<unsigned long long>(r.dm.shard_redirects));
  std::printf(
      "Expected shape (paper Fig. 6c): analysis ~1ms, prepare-wait a few\n"
      "ms (decentralized prepare overlaps execution), execution and commit\n"
      "each ~1 WAN round trip and dominating.\n");

  PrintHeader("Overload-control counters (GeoTP, admission enabled)");
  // A deliberately over-offered run so the admission/shed/backoff path has
  // something to count: 512 closed-loop terminals against an in-flight
  // budget of 96 and bounded source run queues.
  ExperimentConfig oc = DefaultConfig();
  oc.system = SystemKind::kGeoTP;
  oc.driver.terminals = 512;
  oc.driver.warmup = SecToMicros(2);
  oc.driver.measure = SecToMicros(8);
  oc.driver.retry_budget = 16;
  oc.ycsb.theta = 0.9;
  oc.ycsb.distributed_ratio = 0.2;
  oc.dm_tweak = [](middleware::MiddlewareConfig* dm) {
    dm->overload.max_inflight = 96;
    dm->overload.max_dispatch_queue = 256;
  };
  oc.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->max_run_queue = 64;
  };
  const auto o = RunTracked(oc);
  std::printf("admitted=%llu shed_inflight=%llu shed_tenant=%llu "
              "shed_dispatch=%llu shed_source=%llu\n",
              static_cast<unsigned long long>(o.dm.overload.admitted),
              static_cast<unsigned long long>(o.dm.overload.shed_inflight),
              static_cast<unsigned long long>(o.dm.overload.shed_tenant),
              static_cast<unsigned long long>(o.dm.overload.shed_dispatch),
              static_cast<unsigned long long>(o.dm.overload.shed_source));
  std::printf("peak_inflight=%llu peak_dispatch_queue=%llu "
              "run_queue_rejections=%llu\n",
              static_cast<unsigned long long>(o.dm.overload.peak_inflight),
              static_cast<unsigned long long>(o.dm.overload.peak_dispatch_queue),
              static_cast<unsigned long long>(o.run_queue_rejections));
  std::printf("client: sheds=%llu retries=%llu retry_exhausted=%llu "
              "tput=%.1f txn/s\n",
              static_cast<unsigned long long>(o.run.sheds),
              static_cast<unsigned long long>(o.run.retries),
              static_cast<unsigned long long>(o.run.retry_exhausted),
              o.Tps());
  return 0;
}
