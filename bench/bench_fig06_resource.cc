// Figure 6: resource utilisation and per-transaction breakdown.
//
// 6a/6b (CPU / memory of a Java process) cannot be reproduced in a
// discrete-event simulation; we report the simulator-native proxies
// documented in DESIGN.md: coordination work per committed transaction
// (events + messages — CPU proxy) and metadata bytes (memory proxy).
// 6c (the per-phase latency breakdown of one transaction lifecycle) is
// reproduced directly.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 6a/6b — resource proxies (SSP vs GeoTP, YCSB MC)");
  std::printf("%-12s %16s %16s %16s %14s %14s\n", "system", "events/commit",
              "msgs/commit", "footprint bytes", "wal entries", "fsyncs/commit");
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
    ExperimentConfig config = DefaultConfig();
    config.system = system;
    config.ycsb.theta = 0.9;
    config.ycsb.distributed_ratio = 0.2;
    const auto r = RunExperiment(config);
    const double commits = static_cast<double>(
        r.run.committed > 0 ? r.run.committed : 1);
    std::printf("%-12s %16.1f %16.1f %16zu %14llu %14.2f\n",
                Label(system).c_str(),
                static_cast<double>(r.events_processed) / commits,
                static_cast<double>(r.network_messages) / commits,
                r.footprint_bytes,
                static_cast<unsigned long long>(r.wal_entries),
                r.FsyncsPerCommit());
  }
  std::printf(
      "Expected shape: GeoTP does LESS coordination per committed txn\n"
      "(~30%% CPU-efficiency win in the paper) while holding extra hot-\n"
      "record metadata (the paper's ~300MB memory delta).\n");

  PrintHeader("Fig. 6c — per-transaction phase breakdown (GeoTP, YCSB MC)");
  ExperimentConfig config = DefaultConfig();
  config.system = SystemKind::kGeoTP;
  config.ycsb.theta = 0.9;
  config.ycsb.distributed_ratio = 0.2;
  const auto r = RunExperiment(config);
  for (int p = 0; p < static_cast<int>(metrics::TxnPhase::kNumPhases); ++p) {
    const auto phase = static_cast<metrics::TxnPhase>(p);
    std::printf("%-12s %10.2f ms\n", metrics::TxnPhaseName(phase),
                r.dm.breakdown.MeanMs(phase));
  }
  std::printf("mean end-to-end latency: %.1f ms\n", r.MeanLatencyMs());
  // Shard-map visibility: migrations (if any) show up in the perf
  // trajectory of every bench JSON that reports DM stats.
  std::printf("shard_map_epoch=%llu shard_redirects=%llu\n",
              static_cast<unsigned long long>(r.dm.shard_map_epoch),
              static_cast<unsigned long long>(r.dm.shard_redirects));
  std::printf(
      "Expected shape (paper Fig. 6c): analysis ~1ms, prepare-wait a few\n"
      "ms (decentralized prepare overlaps execution), execution and commit\n"
      "each ~1 WAN round trip and dominating.\n");
  return 0;
}
