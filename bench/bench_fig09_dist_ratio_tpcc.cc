// Figure 9: TPC-C Payment (a) and NewOrder (b) throughput & latency vs
// percentage of distributed transactions (remote customer / remote stock
// supplier), for SSP, QURO, Chiller and GeoTP.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

void Sweep(workload::TpccTxnType type, const char* title) {
  PrintHeader(title);
  const std::vector<double> ratios = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::printf("%-14s", "system \\ dr");
  for (double dr : ratios) std::printf("        %4.1f       ", dr);
  std::printf("\n");
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kQuro,
                            SystemKind::kChiller, SystemKind::kGeoTP}) {
    std::printf("%-14s", Label(system).c_str());
    for (double dr : ratios) {
      ExperimentConfig config = DefaultConfig();
      config.system = system;
      config.workload = workload::WorkloadKind::kTpcc;
      config.tpcc.distributed_ratio = dr;
      // Pure-type workload so the per-type metrics are the whole story.
      config.tpcc.mix = {};
      config.tpcc.mix[static_cast<size_t>(type)] = 1.0;
      const auto r = RunTracked(config);
      std::printf("  %7.1f/%-8.1f", r.Tps(), r.MeanLatencyMs());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Sweep(workload::TpccTxnType::kPayment,
        "Fig. 9a — TPC-C Payment: throughput (txn/s) / mean latency (ms)");
  Sweep(workload::TpccTxnType::kNewOrder,
        "Fig. 9b — TPC-C NewOrder: throughput (txn/s) / mean latency (ms)");
  std::printf(
      "\nExpected shape (paper Fig. 9): GeoTP ~2.8x SSP throughput and\n"
      "-66%% latency on Payment, ~2x / -53%% on NewOrder (Payment is the\n"
      "more contended type: warehouse YTD hotspot); GeoTP slightly above\n"
      "Chiller throughout.\n");
  return 0;
}
