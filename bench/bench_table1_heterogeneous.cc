// Table I: heterogeneous deployments. S1 = MySQL on all 4 nodes; S2 =
// PostgreSQL on N1 & N3, MySQL on N2 & N4; S3 = PostgreSQL everywhere.
// dr in {25%, 75%}; SSP vs GeoTP, throughput and average latency.
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Table I — heterogeneous deployments (YCSB MC)");
  struct Scenario {
    const char* name;
    std::vector<sql::Dialect> dialects;
  };
  const Scenario scenarios[] = {
      {"S1 (all MySQL)",
       {sql::Dialect::kMySql, sql::Dialect::kMySql, sql::Dialect::kMySql,
        sql::Dialect::kMySql}},
      {"S2 (PG/My mixed)",
       {sql::Dialect::kPostgres, sql::Dialect::kMySql, sql::Dialect::kPostgres,
        sql::Dialect::kMySql}},
      {"S3 (all PostgreSQL)",
       {sql::Dialect::kPostgres, sql::Dialect::kPostgres,
        sql::Dialect::kPostgres, sql::Dialect::kPostgres}},
  };
  std::printf("%-20s %-8s %-12s %18s %18s\n", "scenario", "dr", "system",
              "throughput(txn/s)", "avg latency(ms)");
  for (const Scenario& scenario : scenarios) {
    for (double dr : {0.25, 0.75}) {
      for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
        ExperimentConfig config = DefaultConfig();
        config.system = system;
        config.dialects = scenario.dialects;
        config.ycsb.theta = 0.9;
        config.ycsb.distributed_ratio = dr;
        const auto r = RunTracked(config);
        std::printf("%-20s %-8.0f%% %-12s %18.1f %18.1f\n", scenario.name,
                    dr * 100, Label(system).c_str(), r.Tps(),
                    r.MeanLatencyMs());
        std::fflush(stdout);
      }
    }
  }
  std::printf(
      "\nExpected shape (paper Table I): GeoTP wins every cell — 3.6x to\n"
      "7.5x throughput and 62%%-87.8%% lower latency — regardless of the\n"
      "engine mix; both engines suffer long contention spans under SSP.\n");
  return 0;
}
