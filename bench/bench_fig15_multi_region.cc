// Figure 15: multi-region deployment — two middlewares, each co-located
// with its own clients, sharing the four data sources. DM1 sees RTTs
// {0, 27, 73, 251} ms; DM2 sees {251, 226, 175, 0} ms (paper §VII-I).
// Assembled from library pieces directly (the single-DM runner does not
// cover this topology).
#include <memory>

#include "bench_common.h"
#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "sim/topology.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

struct MultiRegionResult {
  double tput_dm1 = 0;
  double tput_dm2 = 0;
};

MultiRegionResult Run(workload::SystemKind system, bool two_middlewares) {
  // Nodes: 0=client1, 1=dm1, 2..5=ds1..ds4, 6=client2, 7=dm2.
  sim::TopologyBuilder builder;
  const NodeId client1 = builder.AddNode(sim::NodeRole::kClient, "c1", "bj");
  const NodeId dm1 = builder.AddNode(sim::NodeRole::kMiddleware, "dm1", "bj");
  const double dm1_rtts[4] = {0.5, 27, 73, 251};
  const double dm2_rtts[4] = {251, 226, 175, 0.5};
  std::vector<NodeId> sources;
  for (int i = 0; i < 4; ++i) {
    sources.push_back(builder.AddNode(sim::NodeRole::kDataSource,
                                      "ds" + std::to_string(i + 1),
                                      "region" + std::to_string(i)));
  }
  const NodeId client2 = builder.AddNode(sim::NodeRole::kClient, "c2", "ld");
  const NodeId dm2 = builder.AddNode(sim::NodeRole::kMiddleware, "dm2", "ld");
  for (int i = 0; i < 4; ++i) {
    builder.SetRttMs(dm1, sources[static_cast<size_t>(i)], dm1_rtts[i]);
    builder.SetRttMs(client1, sources[static_cast<size_t>(i)], dm1_rtts[i]);
    builder.SetRttMs(dm2, sources[static_cast<size_t>(i)], dm2_rtts[i]);
    builder.SetRttMs(client2, sources[static_cast<size_t>(i)], dm2_rtts[i]);
    for (int j = 0; j < i; ++j) {
      builder.SetRttMs(sources[static_cast<size_t>(j)],
                       sources[static_cast<size_t>(i)],
                       std::max(dm1_rtts[i], dm1_rtts[j]));
    }
  }
  builder.SetRttMs(client1, dm1, 0.5);
  builder.SetRttMs(client2, dm2, 0.5);

  sim::EventLoop loop;
  sim::Network network(&loop, builder.Build());

  middleware::MiddlewareConfig dm_config = ConfigForSystem(system);
  std::vector<std::unique_ptr<datasource::DataSourceNode>> nodes;
  for (NodeId ds : sources) {
    datasource::DataSourceConfig ds_config =
        datasource::DataSourceConfig::MySql();
    ds_config.early_abort = dm_config.early_abort;
    nodes.push_back(
        std::make_unique<datasource::DataSourceNode>(ds, &network, ds_config));
    nodes.back()->Attach();
  }

  workload::YcsbConfig ycsb;
  ycsb.data_sources = sources;
  ycsb.theta = 0.9;
  ycsb.distributed_ratio = 0.2;
  workload::YcsbGenerator gen1(ycsb);
  // Region 2's clients are hot on their own region's data (ds4, which is
  // DM2-local); both workloads share the cold middle of the key space.
  workload::YcsbConfig ycsb2 = ycsb;
  ycsb2.mirror_keyspace = true;
  workload::YcsbGenerator gen2(ycsb2);
  middleware::Catalog catalog1, catalog2;
  gen1.RegisterTables(&catalog1);
  gen2.RegisterTables(&catalog2);

  middleware::MiddlewareNode node_dm1(dm1, 0, &network, std::move(catalog1),
                                      dm_config);
  node_dm1.Attach();
  middleware::MiddlewareNode node_dm2(dm2, 1, &network, std::move(catalog2),
                                      dm_config);
  node_dm2.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = two_middlewares ? 32 : 64;
  driver_config.warmup = SecToMicros(4);
  driver_config.measure = SecToMicros(24);
  workload::ClientDriver driver1(client1, &network, dm1, &gen1,
                                 driver_config);
  driver1.Attach();
  driver1.Start();
  std::unique_ptr<workload::ClientDriver> driver2;
  if (two_middlewares) {
    driver_config.seed = 4242;
    driver2 = std::make_unique<workload::ClientDriver>(client2, &network,
                                                       dm2, &gen2,
                                                       driver_config);
    driver2->Attach();
    driver2->Start();
  } else {
    // Single-middleware baseline still registers a handler for client2 /
    // dm2 so stray messages (none expected) are not fatal.
    network.RegisterNode(client2, [](std::unique_ptr<sim::MessageBase>) {});
  }

  loop.RunUntil(driver_config.warmup + driver_config.measure);
  MultiRegionResult result;
  result.tput_dm1 = driver1.stats().ThroughputTps();
  if (driver2) result.tput_dm2 = driver2->stats().ThroughputTps();
  return result;
}

}  // namespace

int main() {
  PrintHeader("Fig. 15 — single vs multi-middleware deployment (YCSB MC)");
  std::printf("%-12s %20s %20s\n", "system", "single-DM (txn/s)",
              "multi-DM (txn/s)");
  for (workload::SystemKind system :
       {workload::SystemKind::kSSP, workload::SystemKind::kGeoTP}) {
    const auto single = Run(system, /*two_middlewares=*/false);
    const auto multi = Run(system, /*two_middlewares=*/true);
    std::printf("%-12s %20.1f %20.1f  (dm1 %.1f + dm2 %.1f)\n",
                Label(system).c_str(), single.tput_dm1,
                multi.tput_dm1 + multi.tput_dm2, multi.tput_dm1,
                multi.tput_dm2);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper Fig. 15): multi-middleware scales the\n"
      "aggregate throughput (GeoTP's optimizations need no centralized\n"
      "component), and GeoTP holds up to ~6.7x over SSP.\n");
  return 0;
}
