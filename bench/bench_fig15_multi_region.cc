// Figure 15: multi-region deployment — two middlewares, each co-located
// with its own clients, sharing the four data sources. DM1 sees RTTs
// {0, 27, 73, 251} ms; DM2 sees {251, 226, 175, 0} ms (paper §VII-I).
// Assembled from library pieces directly (the single-DM runner does not
// cover this topology).
#include <memory>

#include "bench_common.h"
#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "sim/topology.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace geotp;
using namespace geotp::bench;

namespace {

struct MultiRegionResult {
  double tput_dm1 = 0;
  double tput_dm2 = 0;
};

MultiRegionResult Run(workload::SystemKind system, bool two_middlewares) {
  // Nodes: 0=client1, 1=dm1, 2..5=ds1..ds4, 6=client2, 7=dm2.
  sim::TopologyBuilder builder;
  const NodeId client1 = builder.AddNode(sim::NodeRole::kClient, "c1", "bj");
  const NodeId dm1 = builder.AddNode(sim::NodeRole::kMiddleware, "dm1", "bj");
  const double dm1_rtts[4] = {0.5, 27, 73, 251};
  const double dm2_rtts[4] = {251, 226, 175, 0.5};
  std::vector<NodeId> sources;
  for (int i = 0; i < 4; ++i) {
    sources.push_back(builder.AddNode(sim::NodeRole::kDataSource,
                                      "ds" + std::to_string(i + 1),
                                      "region" + std::to_string(i)));
  }
  const NodeId client2 = builder.AddNode(sim::NodeRole::kClient, "c2", "ld");
  const NodeId dm2 = builder.AddNode(sim::NodeRole::kMiddleware, "dm2", "ld");
  for (int i = 0; i < 4; ++i) {
    builder.SetRttMs(dm1, sources[static_cast<size_t>(i)], dm1_rtts[i]);
    builder.SetRttMs(client1, sources[static_cast<size_t>(i)], dm1_rtts[i]);
    builder.SetRttMs(dm2, sources[static_cast<size_t>(i)], dm2_rtts[i]);
    builder.SetRttMs(client2, sources[static_cast<size_t>(i)], dm2_rtts[i]);
    for (int j = 0; j < i; ++j) {
      builder.SetRttMs(sources[static_cast<size_t>(j)],
                       sources[static_cast<size_t>(i)],
                       std::max(dm1_rtts[i], dm1_rtts[j]));
    }
  }
  builder.SetRttMs(client1, dm1, 0.5);
  builder.SetRttMs(client2, dm2, 0.5);

  sim::EventLoop loop;
  sim::Network network(&loop, builder.Build());

  middleware::MiddlewareConfig dm_config = ConfigForSystem(system);
  std::vector<std::unique_ptr<datasource::DataSourceNode>> nodes;
  for (NodeId ds : sources) {
    datasource::DataSourceConfig ds_config =
        datasource::DataSourceConfig::MySql();
    ds_config.early_abort = dm_config.early_abort;
    nodes.push_back(
        std::make_unique<datasource::DataSourceNode>(ds, &network, ds_config));
    nodes.back()->Attach();
  }

  workload::YcsbConfig ycsb;
  ycsb.data_sources = sources;
  ycsb.theta = 0.9;
  ycsb.distributed_ratio = 0.2;
  workload::YcsbGenerator gen1(ycsb);
  // Region 2's clients are hot on their own region's data (ds4, which is
  // DM2-local); both workloads share the cold middle of the key space.
  workload::YcsbConfig ycsb2 = ycsb;
  ycsb2.mirror_keyspace = true;
  workload::YcsbGenerator gen2(ycsb2);
  middleware::Catalog catalog1, catalog2;
  gen1.RegisterTables(&catalog1);
  gen2.RegisterTables(&catalog2);

  middleware::MiddlewareNode node_dm1(dm1, 0, &network, std::move(catalog1),
                                      dm_config);
  node_dm1.Attach();
  middleware::MiddlewareNode node_dm2(dm2, 1, &network, std::move(catalog2),
                                      dm_config);
  node_dm2.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = two_middlewares ? 32 : 64;
  driver_config.warmup = SecToMicros(4);
  driver_config.measure = SecToMicros(24);
  workload::ClientDriver driver1(client1, &network, dm1, &gen1,
                                 driver_config);
  driver1.Attach();
  driver1.Start();
  std::unique_ptr<workload::ClientDriver> driver2;
  if (two_middlewares) {
    driver_config.seed = 4242;
    driver2 = std::make_unique<workload::ClientDriver>(client2, &network,
                                                       dm2, &gen2,
                                                       driver_config);
    driver2->Attach();
    driver2->Start();
  } else {
    // Single-middleware baseline still registers a handler for client2 /
    // dm2 so stray messages (none expected) are not fatal.
    network.RegisterNode(client2, [](std::unique_ptr<sim::MessageBase>) {});
  }

  loop.RunUntil(driver_config.warmup + driver_config.measure);
  MultiRegionResult result;
  result.tput_dm1 = driver1.stats().ThroughputTps();
  if (driver2) result.tput_dm2 = driver2->stats().ThroughputTps();
  return result;
}

// ---------------------------------------------------------------------------
// Leader-failover scenario (src/replication): every data source is a
// 3-replica group with same-region followers; the leader of the
// highest-traffic region is killed mid-measurement and a follower takes
// over via election while the workload keeps running.
// ---------------------------------------------------------------------------

struct FailoverResult {
  double tput = 0;
  double abort_rate = 0;
  uint64_t failovers = 0;
  uint64_t branch_retries = 0;
  NodeId new_leader = kInvalidNode;
  uint64_t epoch = 0;
};

FailoverResult RunFailover(workload::SystemKind system, bool kill_leader) {
  sim::TopologyBuilder builder;
  const NodeId client = builder.AddNode(sim::NodeRole::kClient, "c1", "bj");
  const NodeId dm = builder.AddNode(sim::NodeRole::kMiddleware, "dm1", "bj");
  const double rtts[4] = {0.5, 27, 73, 251};
  std::vector<NodeId> sources;
  std::vector<std::vector<NodeId>> replica_groups;
  for (int i = 0; i < 4; ++i) {
    const std::string region = "region" + std::to_string(i);
    sources.push_back(builder.AddNode(sim::NodeRole::kDataSource,
                                      "ds" + std::to_string(i + 1), region));
  }
  // Two followers per source, co-located in the leader's region (the
  // builder defaults same-region links to the LAN RTT).
  for (int i = 0; i < 4; ++i) {
    const std::string region = "region" + std::to_string(i);
    std::vector<NodeId> group = {sources[static_cast<size_t>(i)]};
    for (int k = 0; k < 2; ++k) {
      const NodeId f = builder.AddNode(
          sim::NodeRole::kDataSource,
          "ds" + std::to_string(i + 1) + "f" + std::to_string(k), region);
      group.push_back(f);
      builder.SetRttMs(dm, f, rtts[i] + 1.0);
      builder.SetRttMs(client, f, rtts[i] + 1.0);
    }
    replica_groups.push_back(std::move(group));
  }
  for (int i = 0; i < 4; ++i) {
    builder.SetRttMs(dm, sources[static_cast<size_t>(i)], rtts[i]);
    builder.SetRttMs(client, sources[static_cast<size_t>(i)], rtts[i]);
    for (int j = 0; j < i; ++j) {
      builder.SetRttMs(sources[static_cast<size_t>(j)],
                       sources[static_cast<size_t>(i)],
                       std::max(rtts[i], rtts[j]));
    }
  }
  builder.SetRttMs(client, dm, 0.5);

  sim::EventLoop loop;
  sim::Network network(&loop, builder.Build());

  middleware::MiddlewareConfig dm_config = ConfigForSystem(system);
  middleware::Catalog catalog;
  workload::YcsbConfig ycsb;
  ycsb.data_sources = sources;
  ycsb.theta = 0.9;
  ycsb.distributed_ratio = 0.2;
  workload::YcsbGenerator gen(ycsb);
  gen.RegisterTables(&catalog);
  for (const auto& group : replica_groups) {
    catalog.SetReplicaGroup(group[0], group);
  }

  std::vector<std::unique_ptr<datasource::DataSourceNode>> nodes;
  for (const auto& group : replica_groups) {
    for (NodeId replica : group) {
      datasource::DataSourceConfig ds_config =
          datasource::DataSourceConfig::MySql();
      ds_config.early_abort = dm_config.early_abort;
      auto node = std::make_unique<datasource::DataSourceNode>(
          replica, &network, ds_config);
      replication::GroupConfig repl;
      repl.logical = group[0];
      repl.replicas = group;
      repl.middlewares = {dm};
      node->EnableReplication(repl);
      node->Attach();
      nodes.push_back(std::move(node));
    }
  }
  middleware::MiddlewareNode node_dm(dm, 0, &network, std::move(catalog),
                                     dm_config);
  node_dm.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = 48;
  driver_config.warmup = SecToMicros(4);
  driver_config.measure = SecToMicros(20);
  workload::ClientDriver driver(client, &network, dm, &gen, driver_config);
  driver.Attach();
  driver.Start();

  // The YCSB keyspace is zipf-hot on ds1 (region0): kill its leader
  // one-third into the measurement window.
  if (kill_leader) {
    loop.ScheduleAt(driver_config.warmup + driver_config.measure / 3,
                    [&nodes]() { nodes[0]->Crash(); });
  }
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  FailoverResult result;
  result.tput = driver.stats().ThroughputTps();
  result.abort_rate = driver.stats().AbortRate();
  result.failovers = node_dm.stats().failovers_observed;
  result.branch_retries = node_dm.stats().branch_retries;
  for (auto& node : nodes) {
    if (!node->crashed() && node->replicator()->IsLeader() &&
        node->replicator()->group_id() == sources[0]) {
      result.new_leader = node->id();
      result.epoch = node->replicator()->epoch();
    }
  }
  return result;
}

void RunFailoverScenario() {
  PrintHeader(
      "Leader failover — 3-replica groups, hottest leader killed mid-run");
  std::printf("%-12s %-10s %14s %10s %10s %22s\n", "system", "failure",
              "tput (txn/s)", "abort%", "failovers", "group0 leader/epoch");
  for (workload::SystemKind system :
       {workload::SystemKind::kSSP, workload::SystemKind::kGeoTP}) {
    const FailoverResult healthy = RunFailover(system, /*kill_leader=*/false);
    const FailoverResult failover = RunFailover(system, /*kill_leader=*/true);
    std::printf("%-12s %-10s %14.1f %9.1f%% %10llu %18s\n",
                Label(system).c_str(), "none", healthy.tput,
                100.0 * healthy.abort_rate,
                static_cast<unsigned long long>(healthy.failovers), "-");
    std::printf("%-12s %-10s %14.1f %9.1f%% %10llu %14d/e%llu\n",
                Label(system).c_str(), "leader", failover.tput,
                100.0 * failover.abort_rate,
                static_cast<unsigned long long>(failover.failovers),
                failover.new_leader,
                static_cast<unsigned long long>(failover.epoch));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: killing the hottest region's leader costs part of\n"
      "the window to election + branch retries, but a follower takes over\n"
      "(epoch >= 1) and throughput recovers instead of flatlining.\n");
}

}  // namespace

int main() {
  PrintHeader("Fig. 15 — single vs multi-middleware deployment (YCSB MC)");
  std::printf("%-12s %20s %20s\n", "system", "single-DM (txn/s)",
              "multi-DM (txn/s)");
  for (workload::SystemKind system :
       {workload::SystemKind::kSSP, workload::SystemKind::kGeoTP}) {
    const auto single = Run(system, /*two_middlewares=*/false);
    const auto multi = Run(system, /*two_middlewares=*/true);
    std::printf("%-12s %20.1f %20.1f  (dm1 %.1f + dm2 %.1f)\n",
                Label(system).c_str(), single.tput_dm1,
                multi.tput_dm1 + multi.tput_dm2, multi.tput_dm1,
                multi.tput_dm2);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper Fig. 15): multi-middleware scales the\n"
      "aggregate throughput (GeoTP's optimizations need no centralized\n"
      "component), and GeoTP holds up to ~6.7x over SSP.\n");
  RunFailoverScenario();
  return 0;
}
