// Microbenchmarks (google-benchmark) for the building blocks: lock
// manager, hotspot footprint (AVL+LRU), geo-scheduler planning, SQL parse
// + rewrite, event loop and zipfian sampling. These quantify the DM-side
// overheads the paper reports as negligible (Fig. 6c "analysis ~1ms" for
// a whole transaction; the per-call costs here are sub-microsecond).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/geo_scheduler.h"
#include "core/hotspot_footprint.h"
#include "sim/event_loop.h"
#include "sql/parser.h"
#include "sql/rewriter.h"
#include "storage/lock_manager.h"

namespace geotp {
namespace {

void BM_LockAcquireRelease(benchmark::State& state) {
  storage::LockManager lm;
  uint64_t txn = 1;
  for (auto _ : state) {
    const Xid xid{txn++, 0};
    for (uint64_t k = 0; k < 5; ++k) {
      lm.RequestLock(xid, RecordKey{1, k}, storage::LockMode::kExclusive,
                     [](Status) {});
    }
    lm.ReleaseAll(xid);
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_LockAcquireRelease);

void BM_LockContendedQueue(benchmark::State& state) {
  const auto waiters = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::LockManager lm;
    lm.RequestLock(Xid{1, 0}, RecordKey{1, 7}, storage::LockMode::kExclusive,
                   [](Status) {});
    state.ResumeTiming();
    for (uint64_t w = 0; w < waiters; ++w) {
      lm.RequestLock(Xid{100 + w, 0}, RecordKey{1, 7},
                     storage::LockMode::kExclusive, [](Status) {});
    }
    lm.ReleaseAll(Xid{1, 0});  // grants cascade through the queue
    for (uint64_t w = 0; w < waiters; ++w) lm.ReleaseAll(Xid{100 + w, 0});
  }
}
BENCHMARK(BM_LockContendedQueue)->Arg(4)->Arg(16)->Arg(64);

void BM_DeadlockCheckDeepChain(benchmark::State& state) {
  // Chain of N transactions each holding key i and waiting on key i+1;
  // the check walks the chain.
  const auto n = static_cast<uint64_t>(state.range(0));
  storage::LockManager lm;
  for (uint64_t i = 0; i < n; ++i) {
    lm.RequestLock(Xid{i, 0}, RecordKey{1, i}, storage::LockMode::kExclusive,
                   [](Status) {});
  }
  for (uint64_t i = 0; i + 1 < n; ++i) {
    lm.RequestLock(Xid{i, 0}, RecordKey{1, i + 1},
                   storage::LockMode::kExclusive, [](Status) {});
  }
  uint64_t probe = n + 1;
  for (auto _ : state) {
    // A fresh txn queueing at the chain tail: full DFS, no cycle.
    const Xid xid{probe++, 0};
    storage::LockRequestId id = lm.RequestLock(
        xid, RecordKey{1, 0}, storage::LockMode::kExclusive, [](Status) {});
    lm.CancelRequest(id, Status::Aborted("bench"));
  }
}
BENCHMARK(BM_DeadlockCheckDeepChain)->Arg(8)->Arg(32);

void BM_FootprintDispatchComplete(benchmark::State& state) {
  core::HotspotFootprint fp;
  Rng rng(1);
  std::vector<RecordKey> keys(5);
  for (auto _ : state) {
    for (auto& key : keys) key = RecordKey{1, rng.NextU64(10000)};
    fp.OnDispatch(keys);
    fp.OnComplete(keys, 1000, true);
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_FootprintDispatchComplete);

void BM_FootprintForecast(benchmark::State& state) {
  core::HotspotFootprint fp;
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    RecordKey key{1, rng.NextU64(100000)};
    fp.OnDispatch({key});
    fp.OnComplete({key}, 500, true);
  }
  std::vector<RecordKey> keys(5);
  for (auto _ : state) {
    for (auto& key : keys) key = RecordKey{1, rng.NextU64(100000)};
    benchmark::DoNotOptimize(fp.ForecastLel(keys));
    benchmark::DoNotOptimize(fp.AbortProbability(keys));
  }
}
BENCHMARK(BM_FootprintForecast);

void BM_SchedulerPlanRound(benchmark::State& state) {
  sim::EventLoop loop;
  sim::Network net(&loop, sim::LatencyMatrix(8));
  core::LatencyMonitor monitor(0, &net, {});
  core::HotspotFootprint fp;
  core::SchedulerConfig config;
  config.policy = core::SchedulerPolicy::kLatencyAwareForecast;
  core::GeoScheduler scheduler(config, &monitor, &fp);
  Rng rng(3);
  std::vector<core::ParticipantPlanInput> inputs(3);
  for (int i = 0; i < 3; ++i) {
    inputs[static_cast<size_t>(i)].data_source = i + 1;
    inputs[static_cast<size_t>(i)].keys = {RecordKey{1, rng.NextU64(100)}};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.ScheduleRound(inputs, -1, rng));
  }
}
BENCHMARK(BM_SchedulerPlanRound);

void BM_ParseUpdate(benchmark::State& state) {
  sql::Parser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(
        "UPDATE savings SET val = val + 100 WHERE key = 74321; "
        "/* last statement */"));
  }
}
BENCHMARK(BM_ParseUpdate);

void BM_RewriteBranchPrepare(benchmark::State& state) {
  const Xid xid{1234567, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sql::Rewriter::BranchPrepare(sql::Dialect::kMySql, xid));
    benchmark::DoNotOptimize(
        sql::Rewriter::BranchPrepare(sql::Dialect::kPostgres, xid));
  }
}
BENCHMARK(BM_RewriteBranchPrepare);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.Schedule((i * 31) % 997, []() {});
    }
    loop.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_BoundedZipfSample(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedZipfSample(0, 4000000, 0.9, rng));
  }
}
BENCHMARK(BM_BoundedZipfSample);

}  // namespace
}  // namespace geotp

BENCHMARK_MAIN();
