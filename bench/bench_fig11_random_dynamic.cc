// Figure 11: (a) random network latencies — mean and spread of throughput
// over repeated runs with jittered links, vs distributed ratio; (b) online
// adaptivity — link latencies re-shaped every 40s over a 320s run, with
// per-interval throughput (EWMA-driven re-adaptation).
#include <algorithm>

#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 11a — random latency (20 seeds, jitter 1.5x): tput");
  std::printf("%-6s %16s %16s\n", "dr", "SSP min/avg/max", "GeoTP min/avg/max");
  for (double dr : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::string cells[2];
    int i = 0;
    for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
      double sum = 0, lo = 1e18, hi = 0;
      const int kSeeds = 20;
      for (int seed = 0; seed < kSeeds; ++seed) {
        ExperimentConfig config = DefaultConfig();
        config.system = system;
        config.ycsb.theta = 0.9;
        config.ycsb.distributed_ratio = dr;
        config.jitter_frac = 0.25;  // per-message jitter (latency x ~1.5 tail)
        config.seed = 1000 + static_cast<uint64_t>(seed);
        config.driver.measure = SecToMicros(12);
        const double tps = RunTracked(config).Tps();
        sum += tps;
        lo = std::min(lo, tps);
        hi = std::max(hi, tps);
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f", lo, sum / kSeeds, hi);
      cells[i++] = buf;
    }
    std::printf("%-6.1f %16s %16s\n", dr, cells[0].c_str(), cells[1].c_str());
    std::fflush(stdout);
  }

  PrintHeader("Fig. 11b — online adaptivity: latency re-shaped every 40s");
  std::printf("%-10s %12s %12s\n", "t (s)", "SSP tput", "GeoTP tput");
  std::vector<std::vector<std::pair<double, double>>> series;
  std::vector<uint64_t> shard_epochs;
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
    ExperimentConfig config = DefaultConfig();
    config.system = system;
    config.ycsb.theta = 0.9;
    config.ycsb.distributed_ratio = 0.5;
    config.driver.warmup = 0;
    config.driver.measure = SecToMicros(320);
    config.pre_run = [](sim::EventLoop* loop, sim::Network* network) {
      // Every 40s, rotate the remote links' RTTs (27/73/251 permuted).
      static const double kRtts[][3] = {
          {27, 73, 251}, {251, 27, 73}, {73, 251, 27}, {27, 251, 73},
          {251, 73, 27}, {73, 27, 251}, {27, 73, 251}, {251, 27, 73}};
      for (int epoch = 1; epoch < 8; ++epoch) {
        loop->Schedule(SecToMicros(40.0 * epoch), [network, epoch]() {
          for (int ds = 0; ds < 3; ++ds) {
            network->matrix().SetSymmetric(
                1, 3 + ds, sim::LinkSpec::FromRttMs(kRtts[epoch][ds]));
          }
        });
      }
    };
    const ExperimentResult result = RunTracked(config);
    series.push_back(result.throughput_series);
    shard_epochs.push_back(result.dm.shard_map_epoch);
  }
  const size_t n = std::min(series[0].size(), series[1].size());
  for (size_t i = 9; i < n; i += 10) {  // print every 10s
    std::printf("%-10.0f %12.1f %12.1f\n", series[0][i].first,
                series[0][i].second, series[1][i].second);
  }
  // Shard-map visibility (static placement here: epoch stays 0 unless a
  // bench opts into the elastic-sharding balancer).
  std::printf("shard_map_epoch: SSP=%llu GeoTP=%llu\n",
              static_cast<unsigned long long>(shard_epochs[0]),
              static_cast<unsigned long long>(shard_epochs[1]));
  std::printf(
      "\nExpected shape (paper Fig. 11): (a) GeoTP above SSP at every dr\n"
      "with bounded jitter spread; (b) GeoTP re-adapts after each 40s\n"
      "switch via its EWMA monitor and stays above SSP (1.1x-10.5x).\n");
  return 0;
}
