// Figure 1b: impact of the DM<->DS2 network latency on the average latency
// of *centralized* transactions (which never touch DS2), under low- and
// medium-contention YCSB. 80% centralized on DS1, 20% distributed over
// DS1+DS2 (paper §I motivating example).
#include "bench_common.h"

using namespace geotp;
using namespace geotp::bench;

int main() {
  PrintHeader("Fig. 1b — centralized txn latency vs DM<->DS2 RTT (SSP)");
  std::printf("%-10s %-18s %-18s\n", "DS2 RTT", "LC centr. (ms)",
              "MC centr. (ms)");
  for (double rtt : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    double lat[2] = {0, 0};
    int i = 0;
    for (double theta : {0.3, 0.9}) {
      ExperimentConfig config = DefaultConfig();
      config.system = SystemKind::kSSP;
      config.ds_rtts_ms = {10.0, rtt};
      config.ycsb.theta = theta;
      config.ycsb.distributed_ratio = 0.2;
      // Paper's motivation workload: centralized txns access DS1 only;
      // distributed ones access DS1 + DS2.
      config.ycsb.pin_anchor_to_first_node = true;
      const auto result = RunTracked(config);
      lat[i++] = result.run.centralized_latency.Mean() / 1000.0;
    }
    std::printf("%-10.0f %-18.1f %-18.1f\n", rtt, lat[0], lat[1]);
  }
  std::printf(
      "\nExpected shape (paper): MC curve rises steeply with DS2 latency;\n"
      "LC stays nearly flat — distributed transactions' lock contention\n"
      "spans transfer DS2's latency onto centralized transactions.\n");
  return 0;
}
